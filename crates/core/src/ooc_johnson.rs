//! Algorithm 2: out-of-core batched Johnson's.
//!
//! `bat = (L − S) / (c·m + n)` Near-Far SSSP instances run per MSSP kernel
//! launch (one instance per thread block); each batch's `bat × n` result
//! panel streams back to the host, for `O(n²)` total data movement. When
//! the batch is too small to saturate the device, the paper's dynamic
//! parallelism offloads high-out-degree vertices to child kernels.

use crate::checkpoint::{Checkpoint, Progress};
use crate::error::ApspError;
use crate::options::{DynamicParallelism, JohnsonOptions};
use crate::sdc::{SdcGuard, SDC_SAMPLE_SEED};
use crate::supervisor::{RetryState, RetryStep, Supervisor};
use crate::tile_store::{TileStore, SDC_PANEL_ROWS};
use apsp_gpu_sim::{GpuDevice, Pinning};
use apsp_graph::{CsrGraph, Dist, VertexId};
use apsp_kernels::mssp::{mssp_kernel, MsspOptions};
use apsp_kernels::nearfar::NearFarStats;
use apsp_kernels::DeviceMatrix;

/// Outcome statistics of one out-of-core Johnson run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JohnsonRunStats {
    /// Batch size used (`bat`).
    pub batch_size: usize,
    /// Number of batches (`n_b`).
    pub num_batches: usize,
    /// Whether the dynamic-parallelism path was active.
    pub dynamic_parallelism: bool,
    /// Aggregated Near-Far counters.
    pub work: NearFarStats,
    /// Simulated seconds for the whole run.
    pub sim_seconds: f64,
    /// Restarts forced by mid-run device allocation failures (0 on a
    /// clean run). Each restart recomputes every uncommitted batch from
    /// the graph, possibly with a smaller `bat`.
    pub retries: u32,
    /// Checkpoint commits performed (0 without checkpointing).
    pub checkpoint_commits: u32,
    /// Silent corruptions repaired by restarting from the corrupt
    /// panel's first source row (the cheap recovery rung).
    pub sdc_panel_recoveries: u32,
    /// Silent corruptions repaired by recomputing every source from the
    /// graph (the unlocalized rung).
    pub sdc_round_recoveries: u32,
}

/// The paper's batch-size formula: `bat = (L − S) / (c·m)`, where `L` is
/// device memory, `S` the graph's storage, and `c·m` the per-instance
/// work-queue footprint — extended with the `n`-word output row each
/// instance must also keep resident. Clamped to `[1, n]`.
pub fn batch_size(
    dev: &GpuDevice,
    g: &CsrGraph,
    queue_words_per_edge: f64,
) -> Result<usize, ApspError> {
    let w = std::mem::size_of::<Dist>() as f64;
    let l = dev.free_memory() as f64;
    let s = g.storage_bytes() as f64;
    let n = g.num_vertices() as f64;
    let m = g.num_edges() as f64;
    let per_instance = (queue_words_per_edge * m + n) * w;
    let available = l - s;
    // Physical feasibility: the graph, one distance row and one set of
    // work queues (one word per edge) must fit; the tunable `c` above
    // that floor only shapes how many instances run concurrently.
    let min_instance = (m + n) * w;
    if available < min_instance {
        return Err(ApspError::DeviceTooSmall {
            algorithm: "out-of-core Johnson's",
            detail: format!(
                "graph ({s} B) plus one SSSP instance ({min_instance} B) exceeds free device memory ({l} B)"
            ),
        });
    }
    Ok(((available / per_instance) as usize).clamp(1, g.num_vertices().max(1)))
}

/// Run batched Johnson's APSP into `store`.
pub fn ooc_johnson(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &JohnsonOptions,
) -> Result<JohnsonRunStats, ApspError> {
    ooc_johnson_impl(
        dev,
        g,
        store,
        None,
        opts,
        None,
        None,
        &Supervisor::unarmed(),
    )
}

/// [`ooc_johnson`] under a [`Supervisor`]: the deadline, progress
/// watchdog, and cancellation token are checked at every batch barrier,
/// and retries follow the supervisor's policy.
pub fn ooc_johnson_supervised(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &JohnsonOptions,
    sup: &Supervisor,
) -> Result<JohnsonRunStats, ApspError> {
    ooc_johnson_impl(dev, g, store, None, opts, None, None, sup)
}

/// [`ooc_johnson`] with crash-safe durability: progress commits to
/// `ckpt` after every batch, and a checkpoint already present in
/// `ckpt`'s directory (validated against `g` and the store checksums) is
/// resumed — only the source rows at or above the committed cursor are
/// recomputed. The checkpoint is cleared on successful completion.
///
/// Unlike Floyd-Warshall, resume is geometry-free: every batch writes
/// complete rows recomputed from the graph, so the remaining rows may be
/// re-batched at whatever size fits the device today.
pub fn ooc_johnson_checkpointed(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &JohnsonOptions,
    ckpt: &Checkpoint,
) -> Result<JohnsonRunStats, ApspError> {
    ooc_johnson_checkpointed_supervised(dev, g, store, opts, ckpt, &Supervisor::unarmed())
}

/// [`ooc_johnson_checkpointed`] under a [`Supervisor`]. A run
/// interrupted by a deadline, stall, or cancellation leaves its last
/// committed batch in `ckpt`, so a later call resumes instead of
/// starting over.
pub fn ooc_johnson_checkpointed_supervised(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    opts: &JohnsonOptions,
    ckpt: &Checkpoint,
    sup: &Supervisor,
) -> Result<JohnsonRunStats, ApspError> {
    let resume = match ckpt.load()? {
        Some(m) => {
            let Progress::Johnson {
                batch_size,
                next_row,
            } = m.progress
            else {
                return Err(ApspError::InvalidInput(format!(
                    "checkpoint in {} belongs to the `{}` algorithm, not Johnson's — \
                     delete it to start over",
                    ckpt.dir().display(),
                    m.progress.algorithm_tag()
                )));
            };
            ckpt.restore_into(&m, store)?;
            Some((batch_size, next_row))
        }
        None => None,
    };
    let stats = ooc_johnson_impl(dev, g, store, None, opts, resume, Some(ckpt), sup)?;
    ckpt.clear()?;
    Ok(stats)
}

/// [`ooc_johnson`] that additionally streams the full n×n *predecessor*
/// matrix into `parent_store`: `parent_store[i][j]` is the predecessor of
/// `j` on a shortest path from `i` (`VertexId::MAX` when `j` is `i` or
/// unreachable). Doubles the output traffic — exactly as it would on the
/// real device — and composes with [`crate::paths`] for reconstruction.
pub fn ooc_johnson_with_parents(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    parent_store: &mut TileStore,
    opts: &JohnsonOptions,
) -> Result<JohnsonRunStats, ApspError> {
    ooc_johnson_impl(
        dev,
        g,
        store,
        Some(parent_store),
        opts,
        None,
        None,
        &Supervisor::unarmed(),
    )
}

/// Batched MSSP over an explicit source list — the k-source partial
/// query underneath [`crate::service`]'s `JobSpec::Sources`. Returns the
/// `k × n` distance panel in *request order* (row `i` is the SSSP row of
/// `sources[i]`), never materializing the full matrix: data movement is
/// `O(k·n)`, so 1k sources out of n = 100k does not pay `n²`.
///
/// Shares the full driver's machinery: the paper's batch formula sizes
/// each kernel launch, the supervisor is consulted at every batch
/// barrier, and mid-run allocation failures restart at the same then a
/// halved batch. Restarts are exact — every row is recomputed from the
/// graph alone. Duplicate sources are allowed (each occurrence gets its
/// own output row).
pub fn ooc_johnson_sources(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    sources: &[VertexId],
    opts: &JohnsonOptions,
    sup: &Supervisor,
) -> Result<(Vec<Dist>, JohnsonRunStats), ApspError> {
    let n = g.num_vertices();
    for &s in sources {
        if (s as usize) >= n {
            return Err(ApspError::InvalidInput(format!(
                "source {s} out of range for a graph with {n} vertices"
            )));
        }
    }
    let k = sources.len();
    let mut out = vec![0 as Dist; k * n];
    if n == 0 || k == 0 {
        return Ok((
            out,
            JohnsonRunStats {
                batch_size: 0,
                num_batches: 0,
                dynamic_parallelism: false,
                work: NearFarStats::default(),
                sim_seconds: 0.0,
                retries: 0,
                checkpoint_commits: 0,
                sdc_panel_recoveries: 0,
                sdc_round_recoveries: 0,
            },
        ));
    }
    let mut bat = batch_size(dev, g, opts.queue_words_per_edge)?.min(k);
    let mut retry = RetryState::new(sup.retry_policy(), "out-of-core Johnson's (partial)");
    loop {
        match johnson_source_batches(dev, g, sources, &mut out, opts, bat, sup) {
            Ok(mut stats) => {
                stats.retries = retry.retries();
                return Ok((out, stats));
            }
            Err(e) => {
                let (step, oom) = retry.next_step(e, sup)?;
                if step == RetryStep::Shrink {
                    if bat <= 1 {
                        return Err(ApspError::DeviceTooSmall {
                            algorithm: "out-of-core Johnson's (partial)",
                            detail: format!(
                                "allocation kept failing at the minimum batch of 1: {oom}"
                            ),
                        });
                    }
                    bat = (bat / 2)
                        .min(batch_size(dev, g, opts.queue_words_per_edge)?)
                        .max(1);
                }
            }
        }
    }
}

/// One pass over the requested source batches at a fixed `bat`, writing
/// each panel straight into `out` (no tile store — the panel is the
/// product).
fn johnson_source_batches(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    sources: &[VertexId],
    out: &mut [Dist],
    opts: &JohnsonOptions,
    bat: usize,
    sup: &Supervisor,
) -> Result<JohnsonRunStats, ApspError> {
    let n = g.num_vertices();
    let delta = opts
        .delta
        .unwrap_or_else(|| apsp_kernels::nearfar::default_delta(g));
    let dynamic = match opts.dynamic_parallelism {
        DynamicParallelism::On => true,
        DynamicParallelism::Off => false,
        DynamicParallelism::Auto => (bat as u32) < dev.profile().saturating_blocks,
    };
    let mssp_opts = MsspOptions {
        delta,
        dynamic_parallelism: dynamic,
        heavy_degree_threshold: opts.heavy_degree_threshold,
        exec: opts.exec,
    };
    let graph_hold: apsp_gpu_sim::DeviceBuffer<u8> = dev.alloc(g.storage_bytes())?;
    let start = dev.elapsed().seconds();
    let s0 = dev.default_stream();
    let s1 = if opts.overlap_transfers {
        dev.create_stream()
    } else {
        s0
    };
    let tel = sup.telemetry().clone();
    let mut work = NearFarStats::default();
    let mut num_batches = 0usize;
    let mut done = 0usize;
    for (bi, chunk) in sources.chunks(bat).enumerate() {
        num_batches += 1;
        let ph = tel.phase_start(dev);
        let stream = if opts.overlap_transfers && bi % 2 == 1 {
            s1
        } else {
            s0
        };
        let mut panel = DeviceMatrix::alloc_inf(dev, chunk.len(), n)?;
        let outcome = mssp_kernel(dev, stream, g, chunk, &mut panel, mssp_opts);
        work.merge(&outcome.stats);
        let host = &mut out[done * n..(done + chunk.len()) * n];
        panel.download_rows(dev, stream, 0..chunk.len(), host, Pinning::Pinned);
        done += chunk.len();
        tel.phase_end(dev, ph, "johnson.sources_batch");
        sup.check_barrier(
            dev.elapsed().seconds(),
            &format!("Johnson sources batch {bi} barrier"),
        )?;
    }
    drop(graph_hold);
    let sim_seconds = dev.synchronize().seconds() - start;
    Ok(JohnsonRunStats {
        batch_size: bat,
        num_batches,
        dynamic_parallelism: dynamic,
        work,
        sim_seconds,
        retries: 0,
        checkpoint_commits: 0,
        sdc_panel_recoveries: 0,
        sdc_round_recoveries: 0,
    })
}

#[allow(clippy::too_many_arguments)]
fn ooc_johnson_impl(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    mut parent_store: Option<&mut TileStore>,
    opts: &JohnsonOptions,
    resume: Option<(usize, usize)>,
    ckpt: Option<&Checkpoint>,
    sup: &Supervisor,
) -> Result<JohnsonRunStats, ApspError> {
    let n = g.num_vertices();
    assert_eq!(store.n(), n);
    if let Some(ps) = parent_store.as_deref() {
        assert_eq!(ps.n(), n, "parent store dimension mismatch");
    }
    if n == 0 {
        return Ok(JohnsonRunStats {
            batch_size: 0,
            num_batches: 0,
            dynamic_parallelism: false,
            work: NearFarStats::default(),
            sim_seconds: 0.0,
            retries: 0,
            checkpoint_commits: 0,
            sdc_panel_recoveries: 0,
            sdc_round_recoveries: 0,
        });
    }
    if opts.sdc_guard.is_on() && store.sdc_guard() != opts.sdc_guard {
        store.set_sdc_guard(opts.sdc_guard)?;
    }
    let mut guard = SdcGuard::new(opts.sdc_guard, SDC_SAMPLE_SEED);
    let mut panel_budget = sup.retry_policy().sdc_panel_retries;
    let mut round_budget = sup.retry_policy().sdc_round_retries;
    let mut panel_recoveries = 0u32;
    let mut round_recoveries = 0u32;
    // A resumed run keeps the committed batch size (re-fitting happens
    // through the retry path if it no longer fits) and skips the rows
    // already final in the restored snapshot.
    let (resume_bat, start_row) = match resume {
        Some((b, r)) => (Some(b.clamp(1, n)), r.min(n)),
        None => (None, 0),
    };
    let mut bat = match resume_bat {
        Some(b) => b,
        None => {
            let mut b = batch_size(dev, g, opts.queue_words_per_edge)?;
            if parent_store.is_some() {
                // Two result panels (distances + parents) share the device.
                b = (b / 2).max(1);
            }
            b
        }
    };
    // A mid-run allocation failure degrades gracefully: restart once at
    // the same batch size (a transient fault clears), then at halved
    // batches. Restarts are exact — every batch writes complete rows
    // recomputed from the graph, so a retry simply overwrites them.
    let mut commits = 0u32;
    let mut retry = RetryState::new(sup.retry_policy(), "out-of-core Johnson's");
    let mut cur_start = start_row;
    loop {
        match johnson_batches(
            dev,
            g,
            store,
            parent_store.as_deref_mut(),
            opts,
            bat,
            cur_start,
            ckpt,
            &mut commits,
            sup,
            &mut guard,
        ) {
            Ok(mut stats) => {
                stats.retries = retry.retries();
                stats.checkpoint_commits = commits;
                stats.sdc_panel_recoveries = panel_recoveries;
                stats.sdc_round_recoveries = round_recoveries;
                return Ok(stats);
            }
            Err(ApspError::SilentCorruption {
                panel,
                round,
                detail,
            }) => {
                let tel = sup.telemetry().clone();
                tel.count_sdc(1, 0, 0);
                // Johnson rows never feed each other — every source row
                // is recomputed from the graph alone — so restarting the
                // batch pass at the corrupt panel's first row is exact
                // and leaves the rows below it untouched.
                if panel != usize::MAX && panel_budget > 0 {
                    panel_budget -= 1;
                    panel_recoveries += 1;
                    let ph = tel.phase_start(dev);
                    cur_start = (panel * SDC_PANEL_ROWS).min(n);
                    // The rewrite reaches the corrupt row batch by
                    // batch; re-seed the registry for everything being
                    // recomputed so the stale mismatch cannot re-fire
                    // at an earlier batch barrier.
                    store.sdc_rebaseline(cur_start..n)?;
                    tel.phase_end(dev, ph, "sdc.recover_panel");
                    tel.count_sdc(0, 1, 0);
                    continue;
                }
                // Unlocalized (or panel budget spent): recompute every
                // source. Still exact for the same reason.
                if round_budget > 0 {
                    round_budget -= 1;
                    round_recoveries += 1;
                    let ph = tel.phase_start(dev);
                    cur_start = 0;
                    store.sdc_rebaseline(0..n)?;
                    tel.phase_end(dev, ph, "sdc.recover_round");
                    tel.count_sdc(0, 0, 1);
                    continue;
                }
                return Err(ApspError::SilentCorruption {
                    panel,
                    round,
                    detail,
                });
            }
            Err(e) => {
                let (step, oom) = retry.next_step(e, sup)?;
                if step == RetryStep::Shrink {
                    if bat <= 1 {
                        return Err(ApspError::DeviceTooSmall {
                            algorithm: "out-of-core Johnson's",
                            detail: format!(
                                "allocation kept failing at the minimum batch of 1: {oom}"
                            ),
                        });
                    }
                    // Re-fit against current free memory too — the device
                    // may have shrunk since the batch was first sized (and
                    // batch_size re-checks that the graph still fits at
                    // all).
                    bat = (bat / 2).min(batch_size(dev, g, opts.queue_words_per_edge)?);
                }
            }
        }
    }
}

/// One pass over the source batches `start_row..n` at a fixed `bat`,
/// committing to `ckpt` (when present) after each batch's rows land.
#[allow(clippy::too_many_arguments)]
fn johnson_batches(
    dev: &mut GpuDevice,
    g: &CsrGraph,
    store: &mut TileStore,
    mut parent_store: Option<&mut TileStore>,
    opts: &JohnsonOptions,
    bat: usize,
    start_row: usize,
    ckpt: Option<&Checkpoint>,
    commits: &mut u32,
    sup: &Supervisor,
    guard: &mut SdcGuard,
) -> Result<JohnsonRunStats, ApspError> {
    let n = g.num_vertices();
    let delta = opts
        .delta
        .unwrap_or_else(|| apsp_kernels::nearfar::default_delta(g));
    let dynamic = match opts.dynamic_parallelism {
        DynamicParallelism::On => true,
        DynamicParallelism::Off => false,
        // The paper's policy: engage child kernels only when the batch
        // cannot saturate the device on its own.
        DynamicParallelism::Auto => (bat as u32) < dev.profile().saturating_blocks,
    };
    let mssp_opts = MsspOptions {
        delta,
        dynamic_parallelism: dynamic,
        heavy_degree_threshold: opts.heavy_degree_threshold,
        exec: opts.exec,
    };

    // Graph occupies the device for the entire run (the `S` term).
    let graph_hold: apsp_gpu_sim::DeviceBuffer<u8> = dev.alloc(g.storage_bytes())?;

    let start = dev.elapsed().seconds();
    let s0 = dev.default_stream();
    let s1 = if opts.overlap_transfers {
        dev.create_stream()
    } else {
        s0
    };
    let tel = sup.telemetry().clone();
    let mut work = NearFarStats::default();
    let mut num_batches = 0usize;
    let mut host_panel = vec![0 as Dist; bat * n];
    let sources: Vec<VertexId> = (start_row as VertexId..n as VertexId).collect();
    for (bi, chunk) in sources.chunks(bat).enumerate() {
        num_batches += 1;
        store.set_sdc_round(bi);
        let ph = tel.phase_start(dev);
        // Alternate streams so the previous panel's D2H overlaps this
        // batch's kernel.
        let stream = if opts.overlap_transfers && bi % 2 == 1 {
            s1
        } else {
            s0
        };
        let mut panel = DeviceMatrix::alloc_inf(dev, chunk.len(), n)?;
        if let Some(ps) = parent_store.as_deref_mut() {
            let mut parents_panel = DeviceMatrix::alloc_inf(dev, chunk.len(), n)?;
            let outcome = apsp_kernels::mssp::mssp_kernel_with_parents(
                dev,
                stream,
                g,
                chunk,
                &mut panel,
                &mut parents_panel,
                mssp_opts,
            );
            work.merge(&outcome.stats);
            let host = &mut host_panel[..chunk.len() * n];
            parents_panel.download_rows(dev, stream, 0..chunk.len(), host, Pinning::Pinned);
            ps.write_rows(chunk[0] as usize, host)?;
        } else {
            let outcome = mssp_kernel(dev, stream, g, chunk, &mut panel, mssp_opts);
            work.merge(&outcome.stats);
        }
        let host = &mut host_panel[..chunk.len() * n];
        panel.download_rows(dev, stream, 0..chunk.len(), host, Pinning::Pinned);
        store.write_rows(chunk[0] as usize, host)?;
        tel.phase_end(dev, ph, "johnson.batch");
        // Supervision check at the natural barrier: this batch's rows
        // are down; everything committed so far stays resumable. Reads
        // the makespan clock (`elapsed`), not `synchronize` — a real
        // barrier would serialize the overlap streams.
        sup.check_barrier(
            dev.elapsed().seconds(),
            &format!("Johnson batch {bi} barrier"),
        )?;
        // Natural commit point: every row below the cursor is final.
        // The last batch is not committed — completion clears the
        // checkpoint, and a crash after it replays one batch (exact:
        // rows are recomputed from the graph).
        let next_row = chunk[0] as usize + chunk.len();
        // Invariant guard BEFORE the commit, so a committed snapshot is
        // never taken across undetected corruption.
        let completed: Vec<usize> = (0..next_row).collect();
        guard.check_completed_rows(store, bi, &completed)?;
        if let Some(ck) = ckpt {
            if next_row < n {
                ck.commit(
                    store,
                    &Progress::Johnson {
                        batch_size: bat,
                        next_row,
                    },
                )?;
                *commits += 1;
            }
        }
    }
    drop(graph_hold);
    let sim_seconds = dev.synchronize().seconds() - start;
    Ok(JohnsonRunStats {
        batch_size: bat,
        num_batches,
        dynamic_parallelism: dynamic,
        work,
        sim_seconds,
        retries: 0,
        checkpoint_commits: 0,
        sdc_panel_recoveries: 0,
        sdc_round_recoveries: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile_store::StorageBackend;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, rmat, RmatParams, WeightRange};

    fn run_johnson(
        g: &CsrGraph,
        dev: &mut GpuDevice,
        opts: &JohnsonOptions,
    ) -> apsp_cpu::DistMatrix {
        let mut store = TileStore::new(g.num_vertices(), &StorageBackend::Memory).unwrap();
        let stats = ooc_johnson(dev, g, &mut store, opts).unwrap();
        assert!(stats.num_batches >= 1);
        store.to_dist_matrix().unwrap()
    }

    #[test]
    fn matches_reference_multi_batch() {
        let g = gnp(150, 0.04, WeightRange::default(), 19);
        // Small device → several batches.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let result = run_johnson(&g, &mut dev, &JohnsonOptions::default());
        assert_eq!(result, bgl_plus_apsp(&g));
    }

    #[test]
    fn batch_size_formula_shrinks_with_edges() {
        let dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(4 << 20));
        let sparse = gnp(500, 0.01, WeightRange::default(), 1);
        let dense = gnp(500, 0.10, WeightRange::default(), 1);
        let b_sparse = batch_size(&dev, &sparse, 1.0).unwrap();
        let b_dense = batch_size(&dev, &dense, 1.0).unwrap();
        assert!(b_sparse > b_dense, "{b_sparse} vs {b_dense}");
    }

    #[test]
    fn batch_size_errors_when_graph_does_not_fit() {
        let dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 12));
        let g = gnp(1000, 0.05, WeightRange::default(), 3);
        assert!(batch_size(&dev, &g, 1.0).is_err());
    }

    #[test]
    fn dynamic_parallelism_policies() {
        let g = rmat(
            300,
            3000,
            RmatParams::scale_free(),
            WeightRange::default(),
            4,
        );
        let reference = bgl_plus_apsp(&g);
        for policy in [
            DynamicParallelism::Off,
            DynamicParallelism::On,
            DynamicParallelism::Auto,
        ] {
            let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
            let opts = JohnsonOptions {
                dynamic_parallelism: policy,
                heavy_degree_threshold: 16,
                ..Default::default()
            };
            let result = run_johnson(&g, &mut dev, &opts);
            assert_eq!(result, reference, "policy {policy:?}");
        }
    }

    #[test]
    fn overlap_reduces_sim_time() {
        let g = gnp(200, 0.05, WeightRange::default(), 8);
        let time_with = |overlap: bool| {
            let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
            let opts = JohnsonOptions {
                overlap_transfers: overlap,
                ..Default::default()
            };
            let mut store = TileStore::new(200, &StorageBackend::Memory).unwrap();
            ooc_johnson(&mut dev, &g, &mut store, &opts)
                .unwrap()
                .sim_seconds
        };
        assert!(time_with(true) <= time_with(false));
    }

    #[test]
    fn stats_expose_batching() {
        let g = gnp(120, 0.05, WeightRange::default(), 12);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let mut store = TileStore::new(120, &StorageBackend::Memory).unwrap();
        let stats = ooc_johnson(&mut dev, &g, &mut store, &JohnsonOptions::default()).unwrap();
        assert_eq!(stats.num_batches, 120usize.div_ceil(stats.batch_size));
        assert!(stats.work.total_relaxations() > 0);
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn parents_variant_streams_a_valid_predecessor_matrix() {
        use crate::paths::path_from_parent_store;
        let g = gnp(130, 0.05, WeightRange::new(1, 40), 31);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let mut dist_store = TileStore::new(130, &StorageBackend::Memory).unwrap();
        let mut parent_store = TileStore::new(130, &StorageBackend::Memory).unwrap();
        let stats = crate::ooc_johnson::ooc_johnson_with_parents(
            &mut dev,
            &g,
            &mut dist_store,
            &mut parent_store,
            &JohnsonOptions::default(),
        )
        .unwrap();
        assert!(stats.num_batches >= 1);
        // Distances unchanged by parent tracking.
        assert_eq!(dist_store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
        // Every finite pair reconstructs to a path whose weights sum to
        // the distance.
        for src in [0u32, 64, 129] {
            let row = dist_store.read_row(src as usize).unwrap();
            for dst in 0..130u32 {
                let d = row[dst as usize];
                let path = path_from_parent_store(&parent_store, src, dst).unwrap();
                if d >= apsp_graph::INF {
                    assert!(path.is_none(), "({src}, {dst}) unreachable but has a path");
                    continue;
                }
                let path = path.unwrap_or_else(|| panic!("({src}, {dst}) reachable, no path"));
                assert_eq!(path.first(), Some(&src));
                assert_eq!(path.last(), Some(&dst));
                let mut total = 0;
                for pair in path.windows(2) {
                    total += g.edge_weight(pair[0], pair[1]).expect("path edge exists");
                }
                assert_eq!(total, d, "({src}, {dst})");
            }
        }
        // The parents traffic doubles the D2H volume.
        let r = dev.report();
        assert!(r.bytes_d2h >= 2 * (130 * 130 * 4) as u64);
    }

    #[test]
    fn transient_alloc_fault_recovers_exactly() {
        let g = gnp(150, 0.04, WeightRange::default(), 19);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        // Allocation 1 is the graph hold, allocation 2 the first result
        // panel: fail the panel, expect one restart and an exact matrix.
        dev.inject_alloc_failure(2);
        let stats = ooc_johnson(&mut dev, &g, &mut store, &JohnsonOptions::default()).unwrap();
        assert_eq!(stats.retries, 1);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn repeated_alloc_faults_halve_batch_and_stay_exact() {
        let g = gnp(150, 0.04, WeightRange::default(), 20);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let opts = JohnsonOptions::default();
        let initial_bat = batch_size(&dev, &g, opts.queue_words_per_edge).unwrap();
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        // Attempt 1 dies at its 2nd allocation; the leftover countdown
        // (4 − 2 = 2) kills the same-bat retry at its 2nd allocation too,
        // forcing a halved batch.
        dev.inject_alloc_failure(2);
        dev.inject_alloc_failure(4);
        let stats = ooc_johnson(&mut dev, &g, &mut store, &opts).unwrap();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.batch_size, initial_bat / 2);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join("apsp_ooc_johnson_ckpt")
            .join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpointed_clean_run_commits_per_batch_and_clears() {
        let g = gnp(150, 0.04, WeightRange::default(), 19);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(ckpt_dir("clean"), &g).unwrap();
        let stats =
            ooc_johnson_checkpointed(&mut dev, &g, &mut store, &JohnsonOptions::default(), &ckpt)
                .unwrap();
        assert!(stats.num_batches >= 2, "want a multi-batch run");
        assert_eq!(stats.checkpoint_commits as usize, stats.num_batches - 1);
        assert!(ckpt.load().unwrap().is_none(), "cleared on completion");
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn interrupted_run_resumes_skipping_committed_rows() {
        let g = gnp(150, 0.04, WeightRange::default(), 25);
        let dir = ckpt_dir("resume");
        // 256 KiB → several batches of well under 150 sources.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        // Batch writes tick 1 op, commits tick n = 150: op 200 lands in
        // the second commit, after the first one is durable.
        store.arm_crash(200);
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let err =
            ooc_johnson_checkpointed(&mut dev, &g, &mut store, &JohnsonOptions::default(), &ckpt)
                .unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Storage);
        drop(store);
        let probe = Checkpoint::new(&dir, &g).unwrap();
        let m = probe.load().unwrap().expect("some batch committed");
        let crate::checkpoint::Progress::Johnson { next_row, .. } = m.progress else {
            panic!("wrong progress variant {:?}", m.progress);
        };
        assert!(next_row > 0 && next_row < 150);

        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let stats =
            ooc_johnson_checkpointed(&mut dev, &g, &mut store, &JohnsonOptions::default(), &ckpt)
                .unwrap();
        // The resumed run only recomputed the uncommitted tail.
        assert!(stats.num_batches < 150usize.div_ceil(stats.batch_size) + 1);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
        assert!(ckpt.load().unwrap().is_none());
    }

    #[test]
    fn injected_flips_recover_bit_identical() {
        use crate::options::SdcGuardMode;
        let g = gnp(150, 0.04, WeightRange::default(), 19);
        let reference = bgl_plus_apsp(&g);
        // Johnson writes exactly one op per source row (150 total), so
        // these ordinals land in the first, middle, and final batches.
        for (after_ops, bit) in [(30u64, 11u64), (90, 3), (145, 25)] {
            let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
            let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
            store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
            store.arm_bit_flip(after_ops, bit);
            let opts = JohnsonOptions {
                sdc_guard: SdcGuardMode::Checksum,
                ..Default::default()
            };
            let stats = ooc_johnson(&mut dev, &g, &mut store, &opts).unwrap();
            assert!(
                stats.sdc_panel_recoveries + stats.sdc_round_recoveries >= 1,
                "flip after {after_ops} ops went unnoticed"
            );
            assert_eq!(
                store.to_dist_matrix().unwrap(),
                reference,
                "flip after {after_ops} ops"
            );
        }
    }

    #[test]
    fn exhausted_recovery_budget_surfaces_typed() {
        use crate::options::SdcGuardMode;
        use crate::supervisor::{RetryPolicy, SupervisionOptions};
        let g = gnp(150, 0.04, WeightRange::default(), 19);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let mut store = TileStore::new(150, &StorageBackend::Memory).unwrap();
        store.set_sdc_guard(SdcGuardMode::Checksum).unwrap();
        store.arm_bit_flip(60, 9);
        let sup = Supervisor::new(
            &SupervisionOptions {
                retry: RetryPolicy {
                    sdc_panel_retries: 0,
                    sdc_round_retries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            0.0,
        );
        let opts = JohnsonOptions {
            sdc_guard: SdcGuardMode::Checksum,
            ..Default::default()
        };
        let err = ooc_johnson_supervised(&mut dev, &g, &mut store, &opts, &sup).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::SilentCorruption, "{err}");
    }

    #[test]
    fn partial_sources_match_dijkstra_rows() {
        let g = gnp(140, 0.05, WeightRange::default(), 23);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let sources: Vec<VertexId> = vec![7, 0, 99, 42, 139, 42];
        let (rows, stats) = ooc_johnson_sources(
            &mut dev,
            &g,
            &sources,
            &JohnsonOptions::default(),
            &Supervisor::unarmed(),
        )
        .unwrap();
        assert_eq!(rows.len(), sources.len() * 140);
        assert!(stats.num_batches >= 1);
        for (i, &s) in sources.iter().enumerate() {
            let want = apsp_cpu::dijkstra_sssp(&g, s);
            assert_eq!(&rows[i * 140..(i + 1) * 140], &want[..], "source {s}");
        }
    }

    #[test]
    fn partial_sources_move_k_by_n_not_n_squared() {
        let n = 300;
        let g = gnp(n, 0.03, WeightRange::default(), 5);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let sources: Vec<VertexId> = vec![1, 50, 200];
        ooc_johnson_sources(
            &mut dev,
            &g,
            &sources,
            &JohnsonOptions::default(),
            &Supervisor::unarmed(),
        )
        .unwrap();
        let d2h = dev.report().bytes_d2h;
        let k_n = (sources.len() * n * std::mem::size_of::<Dist>()) as u64;
        let n_sq = (n * n * std::mem::size_of::<Dist>()) as u64;
        assert!(d2h >= k_n, "panel must come down: {d2h} < {k_n}");
        assert!(d2h < n_sq / 4, "partial query paid near-n² traffic: {d2h}");
    }

    #[test]
    fn partial_sources_recover_from_transient_alloc_fault() {
        let g = gnp(150, 0.04, WeightRange::default(), 19);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let sources: Vec<VertexId> = (0..40).collect();
        // Allocation 1 is the graph hold, 2 the first panel.
        dev.inject_alloc_failure(2);
        let (rows, stats) = ooc_johnson_sources(
            &mut dev,
            &g,
            &sources,
            &JohnsonOptions::default(),
            &Supervisor::unarmed(),
        )
        .unwrap();
        assert_eq!(stats.retries, 1);
        for (i, &s) in sources.iter().enumerate() {
            let want = apsp_cpu::dijkstra_sssp(&g, s);
            assert_eq!(&rows[i * 150..(i + 1) * 150], &want[..], "source {s}");
        }
    }

    #[test]
    fn partial_sources_reject_out_of_range() {
        let g = gnp(50, 0.1, WeightRange::default(), 2);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let err = ooc_johnson_sources(
            &mut dev,
            &g,
            &[3, 50],
            &JohnsonOptions::default(),
            &Supervisor::unarmed(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::InvalidInput);
    }

    #[test]
    fn partial_sources_empty_inputs() {
        let g = gnp(30, 0.1, WeightRange::default(), 2);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let (rows, stats) = ooc_johnson_sources(
            &mut dev,
            &g,
            &[],
            &JohnsonOptions::default(),
            &Supervisor::unarmed(),
        )
        .unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.num_batches, 0);
    }

    #[test]
    fn single_batch_on_big_device() {
        let g = gnp(100, 0.05, WeightRange::default(), 14);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let mut store = TileStore::new(100, &StorageBackend::Memory).unwrap();
        let stats = ooc_johnson(&mut dev, &g, &mut store, &JohnsonOptions::default()).unwrap();
        assert_eq!(stats.num_batches, 1);
        assert_eq!(stats.batch_size, 100);
        assert_eq!(store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }
}
