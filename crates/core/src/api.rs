//! Unified front-end: select (or accept) an algorithm and run it.

use crate::calibration::{CalibrationStore, RefitCoefficients};
use crate::checkpoint::{Checkpoint, Progress};
use crate::error::{ApspError, ApspErrorKind};
use crate::ooc_boundary::{
    ooc_boundary_checkpointed_supervised, ooc_boundary_supervised, BoundaryRunStats,
};
use crate::ooc_fw::{
    ooc_floyd_warshall_checkpointed_supervised, ooc_floyd_warshall_guarded, FwRunStats,
};
use crate::ooc_johnson::{
    ooc_johnson_checkpointed_supervised, ooc_johnson_supervised, JohnsonRunStats,
};
use crate::options::{Algorithm, ApspOptions};
use crate::selector::{CostModels, JohnsonModel, Selection};
use crate::supervisor::{FallbackEvent, SupervisionEvent, Supervisor};
use crate::telemetry::{CalibrationRecord, RunReport, Telemetry};
use crate::tile_store::TileStore;
use apsp_gpu_sim::{GpuDevice, SimReport};
use apsp_graph::CsrGraph;

/// Per-algorithm detail statistics.
#[derive(Debug, Clone)]
pub enum RunDetails {
    /// Out-of-core Floyd-Warshall ran.
    FloydWarshall(FwRunStats),
    /// Out-of-core Johnson's ran.
    Johnson(JohnsonRunStats),
    /// The boundary algorithm ran.
    Boundary(BoundaryRunStats),
}

/// The result of [`apsp`].
#[derive(Debug)]
pub struct ApspResult {
    /// The full distance matrix (RAM or disk per the options).
    pub store: TileStore,
    /// Which implementation produced it.
    pub algorithm: Algorithm,
    /// The selector's reasoning (`None` when an algorithm was forced).
    pub selection: Option<Selection>,
    /// Simulated seconds of the run (selector probing excluded, matching
    /// how the paper reports its numbers).
    pub sim_seconds: f64,
    /// Device profiling snapshot at completion.
    pub report: SimReport,
    /// Implementation-specific statistics.
    pub details: RunDetails,
    /// Every algorithm switch the fallback chain performed (empty when
    /// the first choice ran to completion, or fallback was off).
    pub fallback_events: Vec<FallbackEvent>,
    /// Supervision telemetry: retries, stalls and fallbacks in the order
    /// they happened. Deterministic for a fixed seed and fault plan.
    pub supervision_events: Vec<SupervisionEvent>,
    /// The structured run report (`None` unless `opts.telemetry` is on).
    /// Render it with [`RunReport::to_jsonl`].
    pub telemetry: Option<RunReport>,
}

/// The short tag telemetry artifacts use for an algorithm.
fn algorithm_tag(a: Algorithm) -> &'static str {
    match a {
        Algorithm::FloydWarshall => "fw",
        Algorithm::Johnson => "johnson",
        Algorithm::Boundary => "boundary",
    }
}

/// One calibration batch from a selection: every candidate, costed or
/// filtered, with `chosen` marked as the one that will run.
fn calibration_records(sel: &Selection, chosen: Algorithm) -> Vec<CalibrationRecord> {
    sel.candidates
        .iter()
        .map(|c| CalibrationRecord {
            algorithm: algorithm_tag(c.algorithm),
            predicted_s: c.estimate,
            seed_predicted_s: c.seed_estimate,
            filter_reason: c.filter_reason.clone(),
            selected: c.algorithm == chosen,
            realized_s: None,
        })
        .collect()
}

/// Compute APSP for `g` on `dev`, choosing the implementation with the
/// paper's selector unless `opts.algorithm` forces one.
///
/// ```
/// use apsp_core::{apsp, ApspOptions};
/// use apsp_graph::generators::{gnp, WeightRange};
/// use apsp_gpu_sim::{DeviceProfile, GpuDevice};
///
/// let g = gnp(120, 0.04, WeightRange::new(1, 100), 7);
/// // Small device memory ⇒ the out-of-core machinery engages.
/// let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
/// let result = apsp(&g, &mut dev, &ApspOptions::default()).unwrap();
/// assert_eq!(result.store.get(5, 5).unwrap(), 0);
/// assert!(result.sim_seconds > 0.0);
/// ```
pub fn apsp(
    g: &CsrGraph,
    dev: &mut GpuDevice,
    opts: &ApspOptions,
) -> Result<ApspResult, ApspError> {
    let n = g.num_vertices();
    if n == 0 {
        return Err(ApspError::InvalidInput("graph has no vertices".into()));
    }
    let telemetry = if opts.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    if telemetry.is_enabled() {
        // Overlap efficiency is computed from the event trace. Recording
        // it only appends to a host-side vector — the simulated timeline
        // is untouched, so the distances stay bit-identical.
        dev.enable_trace();
    }
    // The front-end's `exec` is authoritative: push it into every
    // per-algorithm option block so whatever the selector (or the
    // fallback chain) ends up running uses the same backend.
    let opts = {
        let mut o = opts.clone();
        o.fw.exec = o.exec;
        o.johnson.exec = o.exec;
        o.boundary.exec = o.exec;
        // Same for the silent-corruption guard level: one front-end
        // switch governs every algorithm the run might end up on.
        o.fw.sdc_guard = o.sdc_guard;
        o.johnson.sdc_guard = o.sdc_guard;
        o.boundary.sdc_guard = o.sdc_guard;
        o
    };
    let opts = &opts;
    // Durability first: with `resume`, an existing checkpoint pins the
    // algorithm (its committed state is algorithm-specific); without it,
    // any stale checkpoint is cleared before fresh work begins.
    let ckpt = match &opts.checkpoint {
        Some(co) => {
            let ckpt = Checkpoint::new(&co.dir, g)?;
            if !co.resume {
                ckpt.clear()?;
            }
            Some(ckpt)
        }
        None => None,
    };
    let resumed_algorithm = match &ckpt {
        Some(c) => c.load()?.map(|m| match m.progress {
            Progress::FloydWarshall { .. } => Algorithm::FloydWarshall,
            Progress::Johnson { .. } => Algorithm::Johnson,
            Progress::Boundary { .. } => Algorithm::Boundary,
        }),
        None => None,
    };
    // Calibration: open (or initialize) the profile's persisted store,
    // keyed per execution backend so observations made under one host
    // kernel never steer another's selections. A *corrupt* store must
    // never fail or perturb the run — the selector falls back to the
    // seed constants and the next commit rewrites the file; I/O errors
    // (permissions, missing parent FS) still surface.
    let mut calib_store = match &opts.calibration_dir {
        Some(dir) => match CalibrationStore::open_for(dir, dev.profile(), opts.exec.name()) {
            Ok(store) => Some(store),
            Err(ApspError::Corruption { .. }) => Some(CalibrationStore::fresh_for(
                dir,
                dev.profile(),
                opts.exec.name(),
            )),
            Err(e) => return Err(e),
        },
        None => None,
    };
    let refit: RefitCoefficients = calib_store
        .as_ref()
        .map(|c| c.coeffs().clone())
        .unwrap_or_default();
    let (algorithm, selection) = match (resumed_algorithm, opts.algorithm) {
        (Some(resumed), Some(forced)) if resumed != forced => {
            return Err(ApspError::InvalidInput(format!(
                "checkpoint was written by the {resumed} algorithm but {forced} was forced — \
                 resume without forcing, force {resumed}, or delete the checkpoint"
            )));
        }
        (Some(resumed), _) => (resumed, None),
        (None, Some(forced)) => (forced, None),
        (None, None) => {
            let models = CostModels::calibrate_cached(dev.profile());
            let johnson = JohnsonModel::probe(dev.profile(), g, &opts.selector, &opts.johnson)?;
            let selection = models
                .with_refit(refit.clone())
                .select(g, &opts.selector, &johnson);
            (selection.algorithm, Some(selection))
        }
    };
    // Forced or resumed runs bypass the selector, but both the
    // calibration artifact and the refit observation still want every
    // candidate costed: shadow-select on scratch probes (the run's
    // device clock is untouched) without changing `result.selection`.
    let shadow_selection =
        if selection.is_none() && (telemetry.is_enabled() || calib_store.is_some()) {
            let models = CostModels::calibrate_cached(dev.profile());
            JohnsonModel::probe(dev.profile(), g, &opts.selector, &opts.johnson)
                .ok()
                .and_then(|johnson| {
                    models
                        .with_refit(refit.clone())
                        .select_masked(g, &opts.selector, &johnson, &[])
                })
        } else {
            None
        };
    if telemetry.is_enabled() {
        if let Some(sel) = selection.as_ref().or(shadow_selection.as_ref()) {
            telemetry.record_calibration(calibration_records(sel, algorithm));
        }
    }
    let sup = Supervisor::with_telemetry(
        &opts.supervision,
        dev.elapsed().seconds(),
        telemetry.clone(),
    );
    let mut store = TileStore::new(n, &opts.storage)?;
    store.set_exec_backend(opts.exec);
    store.set_supervision(sup.clone());
    let mut algorithm = algorithm;
    let mut selection = selection;
    let mut masked: Vec<Algorithm> = Vec::new();
    let mut fallback_events: Vec<FallbackEvent> = Vec::new();
    let (sim_seconds, details) = loop {
        let span = telemetry.phase_start(dev);
        let attempt = run_one(algorithm, g, dev, &mut store, opts, ckpt.as_ref(), &sup);
        let err = match attempt {
            Ok(ok) => {
                telemetry.phase_end(dev, span, &format!("attempt.{}", algorithm_tag(algorithm)));
                // The realized time the cost model is judged by is the
                // driver's own measure, matching what it predicted.
                telemetry.set_realized(ok.0);
                break ok;
            }
            Err(e) => {
                // A failed attempt has no driver stats — its span
                // duration is the realized cost of having tried it.
                if let Some(wasted) = telemetry.phase_end(
                    dev,
                    span,
                    &format!("attempt.{}.failed", algorithm_tag(algorithm)),
                ) {
                    telemetry.set_realized(wasted);
                }
                e
            }
        };
        // A failed algorithm is worth replacing only when the failure is
        // about *this algorithm's* run state or liveness. Anything else
        // (cancellation, deadline, at-rest corruption, bad input,
        // storage) would fail the replacement just the same — propagate
        // it. Silent corruption qualifies: the recovery ladder inside
        // the driver is exhausted, but a replacement starts from a
        // fresh store and recomputes everything from the graph.
        let kind = err.kind();
        let replaceable = matches!(
            kind,
            ApspErrorKind::DeviceTooSmall
                | ApspErrorKind::OutOfDeviceMemory
                | ApspErrorKind::Stalled
                | ApspErrorKind::SilentCorruption
        );
        if !opts.supervision.fallback || !replaceable || fallback_events.len() >= 2 {
            return Err(err);
        }
        masked.push(algorithm);
        let models = CostModels::calibrate_cached(dev.profile());
        let johnson = JohnsonModel::probe(dev.profile(), g, &opts.selector, &opts.johnson)?;
        let Some(next) =
            models
                .with_refit(refit.clone())
                .select_masked(g, &opts.selector, &johnson, &masked)
        else {
            return Err(err); // every algorithm failed — surface the last error
        };
        // The failed attempt's checkpoint and partial matrix are that
        // algorithm's state — discard both so the replacement starts
        // clean and its output is bit-identical to a fresh run.
        if let Some(c) = &ckpt {
            c.clear()?;
        }
        store = TileStore::new(n, &opts.storage)?;
        store.set_exec_backend(opts.exec);
        store.set_supervision(sup.clone());
        let now = dev.elapsed().seconds();
        sup.record_event(SupervisionEvent::Fallback {
            from: algorithm,
            to: next.algorithm,
            error_kind: kind,
        });
        fallback_events.push(FallbackEvent {
            from: algorithm,
            to: next.algorithm,
            error_kind: kind,
            detail: err.to_string(),
            sim_seconds: now,
        });
        sup.reset_progress(now);
        algorithm = next.algorithm;
        telemetry.record_calibration(calibration_records(&next, next.algorithm));
        selection = Some(next);
    };
    store.clear_supervision(); // the result outlives the run's budgets
                               // Close the calibration loop: fold the executed algorithm's seed
                               // prediction vs realized seconds into the store and commit it
                               // atomically. This happens after the result is final, so learning
                               // only ever changes *future* selections — never this run's.
    if let Some(cal) = &mut calib_store {
        let executed_parts = selection
            .as_ref()
            .or(shadow_selection.as_ref())
            .and_then(|sel| sel.candidates.iter().find(|c| c.algorithm == algorithm))
            .and_then(|c| c.parts);
        if let Some(parts) = executed_parts {
            cal.observe_run(&parts, sim_seconds);
        }
        cal.commit()?;
    }
    let (retries, checkpoint_commits) = match &details {
        RunDetails::FloydWarshall(s) => (s.retries as u64, s.checkpoint_commits as u64),
        RunDetails::Johnson(s) => (s.retries as u64, s.checkpoint_commits as u64),
        RunDetails::Boundary(s) => (s.retries as u64, s.checkpoint_commits as u64),
    };
    let report = dev.report();
    let supervision_events = sup.events();
    let telemetry = telemetry.build_report(
        algorithm_tag(algorithm),
        opts.exec.name(),
        sim_seconds,
        &report,
        dev.trace(),
        &supervision_events,
        retries,
        checkpoint_commits,
    );
    Ok(ApspResult {
        store,
        algorithm,
        selection,
        sim_seconds,
        report,
        details,
        fallback_events,
        supervision_events,
        telemetry,
    })
}

/// One attempt of one algorithm (checkpointed when a checkpoint is
/// configured), under `sup`'s budgets.
fn run_one(
    algorithm: Algorithm,
    g: &CsrGraph,
    dev: &mut GpuDevice,
    store: &mut TileStore,
    opts: &ApspOptions,
    ckpt: Option<&Checkpoint>,
    sup: &Supervisor,
) -> Result<(f64, RunDetails), ApspError> {
    Ok(match (algorithm, ckpt) {
        (Algorithm::FloydWarshall, Some(c)) => {
            let stats =
                ooc_floyd_warshall_checkpointed_supervised(dev, g, store, &opts.fw, c, sup)?;
            (stats.sim_seconds, RunDetails::FloydWarshall(stats))
        }
        (Algorithm::FloydWarshall, None) => {
            // The guarded entry seeds the store itself and keeps the
            // graph at hand, so a detected corruption can be repaired
            // by the panel-scoped rung instead of only a full replay.
            let stats = ooc_floyd_warshall_guarded(dev, g, store, &opts.fw, sup)?;
            (stats.sim_seconds, RunDetails::FloydWarshall(stats))
        }
        (Algorithm::Johnson, Some(c)) => {
            let stats = ooc_johnson_checkpointed_supervised(dev, g, store, &opts.johnson, c, sup)?;
            (stats.sim_seconds, RunDetails::Johnson(stats))
        }
        (Algorithm::Johnson, None) => {
            let stats = ooc_johnson_supervised(dev, g, store, &opts.johnson, sup)?;
            (stats.sim_seconds, RunDetails::Johnson(stats))
        }
        (Algorithm::Boundary, Some(c)) => {
            let stats =
                ooc_boundary_checkpointed_supervised(dev, g, store, &opts.boundary, c, sup)?;
            (stats.sim_seconds, RunDetails::Boundary(stats))
        }
        (Algorithm::Boundary, None) => {
            let stats = ooc_boundary_supervised(dev, g, store, &opts.boundary, sup)?;
            (stats.sim_seconds, RunDetails::Boundary(stats))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ApspOptions;
    use crate::selector::SelectorConfig;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};

    #[test]
    fn forced_algorithms_all_agree() {
        let g = gnp(90, 0.06, WeightRange::default(), 51);
        let reference = bgl_plus_apsp(&g);
        for alg in [
            Algorithm::FloydWarshall,
            Algorithm::Johnson,
            Algorithm::Boundary,
        ] {
            let mut dev = GpuDevice::new(DeviceProfile::v100());
            let opts = ApspOptions {
                algorithm: Some(alg),
                ..Default::default()
            };
            let result = apsp(&g, &mut dev, &opts).unwrap();
            assert_eq!(result.algorithm, alg);
            assert_eq!(
                result.store.to_dist_matrix().unwrap(),
                reference,
                "algorithm {alg}"
            );
            assert!(result.selection.is_none());
        }
    }

    #[test]
    fn auto_selection_runs_and_is_correct() {
        // A dense-ish small graph: the filter should rule out boundary.
        let g = gnp(100, 0.05, WeightRange::default(), 3);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
        let opts = ApspOptions {
            selector: SelectorConfig {
                // density ≈ 5%: above the default 1% threshold.
                ..Default::default()
            },
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        let selection = result.selection.as_ref().unwrap();
        assert!(!selection.estimates().is_empty());
        assert_eq!(result.algorithm, selection.algorithm);
        assert_eq!(result.store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn very_sparse_class_considers_boundary_and_picks_argmin() {
        // A grid classified very-sparse must be ranked against the
        // boundary algorithm (at this toy size either may win — the
        // paper-shape "boundary wins" check lives in the Fig 6
        // reproduction at realistic scale).
        let g = grid_2d(18, 18, GridOptions::default(), WeightRange::default(), 9);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let opts = ApspOptions {
            selector: SelectorConfig {
                // 324 vertices / 2448 edges: density 1.1e-2 — force the
                // very-sparse class the paper-scale graph would be in.
                density_lo: 0.05,
                density_hi: 0.5,
                ..Default::default()
            },
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        let sel = result.selection.as_ref().unwrap();
        let ests = sel.estimates();
        let algos: Vec<Algorithm> = ests.iter().map(|&(a, _)| a).collect();
        assert!(algos.contains(&Algorithm::Boundary), "{algos:?}");
        assert!(algos.contains(&Algorithm::Johnson), "{algos:?}");
        assert!(!algos.contains(&Algorithm::FloydWarshall), "{algos:?}");
        // Floyd-Warshall is filtered, not silently dropped: its
        // candidate entry survives with the reason attached.
        let fw = sel
            .candidates
            .iter()
            .find(|c| c.algorithm == Algorithm::FloydWarshall)
            .unwrap();
        assert!(fw.estimate.is_some_and(f64::is_finite));
        assert!(!fw.eligible());
        assert!(
            fw.filter_reason.as_deref().unwrap().contains("density"),
            "{:?}",
            fw.filter_reason
        );
        // The winner is the argmin of the estimates.
        let best = ests
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(sel.algorithm, best);
        assert_eq!(result.store.to_dist_matrix().unwrap(), bgl_plus_apsp(&g));
    }

    #[test]
    fn empty_graph_is_invalid() {
        let g = apsp_graph::GraphBuilder::new(0).build();
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        assert!(apsp(&g, &mut dev, &ApspOptions::default()).is_err());
    }

    #[test]
    fn checkpointed_apsp_resumes_through_the_front_end() {
        use crate::options::CheckpointOptions;
        let g = gnp(120, 0.04, WeightRange::default(), 61);
        let reference = bgl_plus_apsp(&g);
        let dir = std::env::temp_dir().join("apsp_api_ckpt").join("front_end");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ApspOptions {
            algorithm: Some(Algorithm::Johnson),
            checkpoint: Some(CheckpointOptions {
                dir: dir.clone(),
                resume: false,
            }),
            ..Default::default()
        };
        // A clean checkpointed run completes and clears its state.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let result = apsp(&g, &mut dev, &opts).unwrap();
        assert_eq!(result.store.to_dist_matrix().unwrap(), reference);
        assert!(!dir.join("manifest").exists(), "cleared on completion");

        // Seed a mid-run checkpoint by hand, then resume WITHOUT forcing
        // an algorithm: the manifest must pin Johnson.
        let ckpt = Checkpoint::new(&dir, &g).unwrap();
        let mut seeded = TileStore::new(120, &crate::StorageBackend::Memory).unwrap();
        crate::ooc_fw::init_store_from_graph(&g, &mut seeded).unwrap();
        ckpt.commit(
            &seeded,
            &Progress::Johnson {
                batch_size: 40,
                next_row: 0,
            },
        )
        .unwrap();
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let resume_opts = ApspOptions {
            algorithm: None,
            checkpoint: Some(CheckpointOptions {
                dir: dir.clone(),
                resume: true,
            }),
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &resume_opts).unwrap();
        assert_eq!(result.algorithm, Algorithm::Johnson);
        assert!(result.selection.is_none(), "resume bypasses the selector");
        assert_eq!(result.store.to_dist_matrix().unwrap(), reference);

        // A conflicting forced algorithm on resume is refused.
        ckpt.commit(
            &seeded,
            &Progress::Johnson {
                batch_size: 40,
                next_row: 0,
            },
        )
        .unwrap();
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let conflict = ApspOptions {
            algorithm: Some(Algorithm::Boundary),
            checkpoint: Some(CheckpointOptions {
                dir: dir.clone(),
                resume: true,
            }),
            ..Default::default()
        };
        let err = apsp(&g, &mut dev, &conflict).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::InvalidInput, "{err}");
    }

    #[test]
    fn deadline_and_cancellation_return_typed_errors() {
        use crate::supervisor::{CancelToken, SupervisionOptions};
        let g = gnp(100, 0.05, WeightRange::default(), 3);
        // An already-expired deadline trips at the first barrier.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let opts = ApspOptions {
            algorithm: Some(Algorithm::FloydWarshall),
            supervision: SupervisionOptions {
                deadline_ms: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        let err = apsp(&g, &mut dev, &opts).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::DeadlineExceeded, "{err}");
        // A tripped cancel token surfaces as a typed cancellation, even
        // when the trip happens inside the store's I/O loop.
        let cancel = CancelToken::cancel_after_checks(1);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        let opts = ApspOptions {
            algorithm: Some(Algorithm::Johnson),
            supervision: SupervisionOptions {
                cancel: Some(cancel),
                ..Default::default()
            },
            ..Default::default()
        };
        let err = apsp(&g, &mut dev, &opts).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Cancelled, "{err}");
    }

    #[test]
    fn stall_triggers_fallback_to_an_equivalent_result() {
        use crate::supervisor::SupervisionOptions;
        let g = gnp(100, 0.05, WeightRange::default(), 3); // dense: Johnson vs FW
        let reference = bgl_plus_apsp(&g);
        // Clean run first, to learn the selector's first choice.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
        let clean = apsp(&g, &mut dev, &ApspOptions::default()).unwrap();
        assert!(clean.fallback_events.is_empty());
        // Same setup, but the first kernel hangs for a simulated week.
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
        dev.inject_kernel_stall(1, 7.0 * 86_400.0);
        let opts = ApspOptions {
            supervision: SupervisionOptions {
                progress_budget_ms: Some(60_000),
                fallback: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        assert_eq!(
            result.fallback_events.len(),
            1,
            "{:?}",
            result.fallback_events
        );
        let fb = &result.fallback_events[0];
        assert_eq!(fb.from, clean.algorithm);
        assert_eq!(fb.error_kind, crate::ApspErrorKind::Stalled);
        assert_eq!(result.algorithm, fb.to);
        assert_ne!(result.algorithm, fb.from);
        assert!(result
            .supervision_events
            .iter()
            .any(|e| matches!(e, crate::SupervisionEvent::Stall { .. })));
        // The fallback's output is the real answer, not a best effort.
        assert_eq!(result.store.to_dist_matrix().unwrap(), reference);
    }

    #[test]
    fn without_fallback_a_stall_is_an_error() {
        use crate::supervisor::SupervisionOptions;
        let g = gnp(100, 0.05, WeightRange::default(), 3);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
        dev.inject_kernel_stall(1, 7.0 * 86_400.0);
        let opts = ApspOptions {
            supervision: SupervisionOptions {
                progress_budget_ms: Some(60_000),
                fallback: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = apsp(&g, &mut dev, &opts).unwrap_err();
        assert_eq!(err.kind(), crate::ApspErrorKind::Stalled, "{err}");
    }

    #[test]
    fn telemetry_report_rides_along_when_enabled() {
        let g = gnp(90, 0.06, WeightRange::default(), 51);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let opts = ApspOptions {
            telemetry: true,
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        let tel = result.telemetry.as_ref().unwrap();
        assert!(!tel.spans.is_empty(), "phase spans must be recorded");
        assert!(
            tel.spans.iter().any(|s| s.name.starts_with("attempt.")),
            "{:?}",
            tel.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
        assert_eq!(tel.calibration.len(), 3, "{:?}", tel.calibration);
        for rec in &tel.calibration {
            // Every record carries a prediction or the reason there is
            // none, and every costed candidate is judged by the
            // realized seconds of the attempt its batch fed.
            assert!(rec.predicted_s.is_some() || rec.filter_reason.is_some());
            assert_eq!(rec.predicted_s.is_some(), rec.seed_predicted_s.is_some());
            if rec.predicted_s.is_some() {
                assert!(rec.realized_s.is_some(), "{rec:?}");
            }
        }
        assert!(tel.bytes_h2d > 0 && tel.bytes_d2h > 0);
        assert!(tel.overlap_efficiency >= 0.0 && tel.overlap_efficiency <= 1.0);
        // Telemetry must not perturb the run: an identical run with it
        // off produces the identical matrix and clock.
        let mut dev2 = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(512 << 10));
        let off = apsp(&g, &mut dev2, &ApspOptions::default()).unwrap();
        assert!(off.telemetry.is_none());
        assert_eq!(off.sim_seconds, result.sim_seconds);
        assert_eq!(
            off.store.to_dist_matrix().unwrap(),
            result.store.to_dist_matrix().unwrap()
        );
    }

    #[test]
    fn calibration_learns_across_runs_without_perturbing_any() {
        use crate::calibration::CalibrationStore;
        let g = gnp(96, 0.06, WeightRange::default(), 0xBE7C);
        let dir = std::env::temp_dir().join("apsp_api_calib").join("learns");
        let _ = std::fs::remove_dir_all(&dir);
        let profile = DeviceProfile::v100().with_memory_bytes(256 << 10);
        let run = |calibrate: bool| {
            let mut dev = GpuDevice::new(profile.clone());
            let opts = ApspOptions {
                telemetry: true,
                calibration_dir: calibrate.then(|| dir.clone()),
                ..Default::default()
            };
            apsp(&g, &mut dev, &opts).unwrap()
        };
        let baseline = run(false);
        let first = run(true);
        // Within a single run calibration is inert: identical selection,
        // clock, and matrix.
        assert_eq!(first.algorithm, baseline.algorithm);
        assert_eq!(first.sim_seconds, baseline.sim_seconds);
        assert_eq!(
            first.store.to_dist_matrix().unwrap(),
            baseline.store.to_dist_matrix().unwrap()
        );
        // The store committed an observation for the executed algorithm.
        let store = CalibrationStore::open(&dir, &profile).unwrap();
        assert_eq!(store.runs(), 1);
        assert_eq!(store.coeffs().observations(), 1);
        // The second run's prediction for the (same) winner matches the
        // realized seconds the first run fed back.
        let second = run(true);
        assert_eq!(second.algorithm, first.algorithm);
        assert_eq!(second.sim_seconds, first.sim_seconds);
        let winner = |r: &ApspResult| {
            r.telemetry
                .as_ref()
                .unwrap()
                .calibration
                .iter()
                .find(|c| c.selected)
                .cloned()
                .unwrap()
        };
        let (w1, w2) = (winner(&first), winner(&second));
        assert_eq!(
            w1.predicted_s, w1.seed_predicted_s,
            "first run is seed-only"
        );
        let err1 = (w1.predicted_s.unwrap() - w1.realized_s.unwrap()).abs();
        let err2 = (w2.predicted_s.unwrap() - w2.realized_s.unwrap()).abs();
        assert!(
            err2 < err1 / 10.0,
            "refit did not tighten the prediction: {err1} -> {err2}"
        );
        assert!(
            (w2.seed_predicted_s.unwrap() - w1.seed_predicted_s.unwrap()).abs() < 1e-12,
            "seed prediction must not drift"
        );
    }

    #[test]
    fn report_contains_kernel_activity() {
        let g = gnp(60, 0.08, WeightRange::default(), 13);
        let mut dev = GpuDevice::new(DeviceProfile::v100());
        let opts = ApspOptions {
            algorithm: Some(Algorithm::Johnson),
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        assert!(
            result.report.kernels.contains_key("mssp")
                || result.report.kernels.contains_key("mssp_dynpar")
        );
        assert!(result.sim_seconds > 0.0);
    }
}

#[cfg(test)]
mod sdc_tests {
    use super::*;
    use crate::options::{ApspOptions, SdcGuardMode};
    use crate::supervisor::{RetryPolicy, SupervisionOptions};
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, WeightRange};

    /// A device-side H2D bit flip (round-0 diagonal raise — the site the
    /// sum check alone cannot see) is caught by the semantic guard and
    /// repaired through the front end, bit-identical to the clean run.
    #[test]
    fn device_flip_under_full_guard_recovers_exactly() {
        let g = gnp(90, 0.06, WeightRange::default(), 51);
        let reference = bgl_plus_apsp(&g);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        dev.inject_bit_flip(1, 30);
        let opts = ApspOptions {
            algorithm: Some(Algorithm::FloydWarshall),
            sdc_guard: SdcGuardMode::Full,
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        let RunDetails::FloydWarshall(stats) = &result.details else {
            panic!("wrong details {:?}", result.details);
        };
        assert_eq!(stats.sdc_round_recoveries, 1);
        assert_eq!(result.store.to_dist_matrix().unwrap(), reference);
    }

    /// With the in-driver ladder disabled, a detected corruption is a
    /// replaceable failure: the fallback chain switches algorithms on a
    /// fresh store and still produces the exact matrix.
    #[test]
    fn exhausted_ladder_falls_back_to_another_algorithm() {
        let g = gnp(90, 0.06, WeightRange::default(), 51);
        let reference = bgl_plus_apsp(&g);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        dev.inject_bit_flip(1, 30);
        let opts = ApspOptions {
            algorithm: Some(Algorithm::FloydWarshall),
            sdc_guard: SdcGuardMode::Full,
            supervision: SupervisionOptions {
                fallback: true,
                retry: RetryPolicy {
                    sdc_panel_retries: 0,
                    sdc_round_retries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        assert_eq!(
            result.fallback_events.len(),
            1,
            "{:?}",
            result.fallback_events
        );
        let fb = &result.fallback_events[0];
        assert_eq!(fb.from, Algorithm::FloydWarshall);
        assert_eq!(fb.error_kind, ApspErrorKind::SilentCorruption);
        assert_ne!(result.algorithm, Algorithm::FloydWarshall);
        assert_eq!(result.store.to_dist_matrix().unwrap(), reference);
    }

    /// Without fallback and without budgets the detection surfaces typed.
    #[test]
    fn without_fallback_detection_is_a_typed_error() {
        let g = gnp(90, 0.06, WeightRange::default(), 51);
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        dev.inject_bit_flip(1, 30);
        let opts = ApspOptions {
            algorithm: Some(Algorithm::FloydWarshall),
            sdc_guard: SdcGuardMode::Full,
            supervision: SupervisionOptions {
                retry: RetryPolicy {
                    sdc_panel_retries: 0,
                    sdc_round_retries: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let err = apsp(&g, &mut dev, &opts).unwrap_err();
        assert_eq!(err.kind(), ApspErrorKind::SilentCorruption, "{err}");
    }
}
