//! Error type for the out-of-core APSP implementations.

use apsp_gpu_sim::OutOfDeviceMemory;

/// Anything that can go wrong while computing APSP out-of-core.
#[derive(Debug)]
pub enum ApspError {
    /// The device cannot hold even the minimum working set (e.g. one
    /// matrix tile plus the graph) for the chosen algorithm.
    DeviceTooSmall {
        /// Which algorithm gave up.
        algorithm: &'static str,
        /// Human-readable sizing detail.
        detail: String,
    },
    /// A device allocation failed unexpectedly mid-run.
    OutOfDeviceMemory(OutOfDeviceMemory),
    /// The host-side tile store failed (disk-backed stores only).
    Storage(std::io::Error),
    /// The input graph is unusable (e.g. zero vertices where the
    /// algorithm needs at least one).
    InvalidInput(String),
    /// Durable state failed validation: a checkpoint manifest is
    /// truncated or fails its self-checksum, a persisted matrix does not
    /// match the checksums recorded for it, or a manifest was written
    /// for a different graph than the one being resumed. Never silently
    /// recovered from — resuming corrupt state would produce wrong
    /// distances.
    Corruption {
        /// What failed validation and how.
        detail: String,
    },
    /// The run's wall-clock deadline elapsed before it finished. The
    /// checkpoint (if one was configured) holds the last committed
    /// barrier, so the run is resumable.
    DeadlineExceeded {
        /// Where the budget ran out.
        detail: String,
    },
    /// The run was cancelled through its [`crate::supervisor::CancelToken`].
    /// Like a deadline, cancellation lands at a barrier or store
    /// operation and leaves any configured checkpoint resumable.
    Cancelled {
        /// Where the cancellation was observed.
        detail: String,
    },
    /// The watchdog declared a stall: no barrier committed within the
    /// progress budget. Distinguished from [`ApspError::DeadlineExceeded`]
    /// because a stall indicts the *algorithm* (a degenerate partition, a
    /// hung kernel) rather than the overall budget, so the fallback chain
    /// treats it as grounds to try a different algorithm.
    Stalled {
        /// Which barrier missed its budget and by how much.
        detail: String,
    },
    /// An SDC guard caught live tile data that no longer matches its
    /// recorded checksum or violates a semiring invariant (distances
    /// increased across a round, or a sampled triangle inequality
    /// failed). Unlike [`ApspError::Corruption`] — which indicts
    /// *durable* state — this indicts the in-flight working set, so the
    /// recovery ladder may recompute the damaged panel or replay the
    /// round before escalating to the fallback chain.
    SilentCorruption {
        /// Damaged panel index (rows `panel * 64 ..`), when localized;
        /// `usize::MAX` when only the round-level invariant tripped.
        panel: usize,
        /// Pivot round / batch / flush ordinal at which the guard fired.
        round: usize,
        /// Which guard tripped and what it observed.
        detail: String,
    },
}

/// Coarse classification of an [`ApspError`] — what conformance
/// assertions match on, so they stay stable as `detail` strings evolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApspErrorKind {
    DeviceTooSmall,
    OutOfDeviceMemory,
    Storage,
    InvalidInput,
    Corruption,
    DeadlineExceeded,
    Cancelled,
    Stalled,
    SilentCorruption,
}

impl ApspErrorKind {
    /// Every kind, in declaration order — keeps classification tests
    /// exhaustive when variants are added.
    pub const ALL: [ApspErrorKind; 9] = [
        ApspErrorKind::DeviceTooSmall,
        ApspErrorKind::OutOfDeviceMemory,
        ApspErrorKind::Storage,
        ApspErrorKind::InvalidInput,
        ApspErrorKind::Corruption,
        ApspErrorKind::DeadlineExceeded,
        ApspErrorKind::Cancelled,
        ApspErrorKind::Stalled,
        ApspErrorKind::SilentCorruption,
    ];

    /// Stable machine-readable name, used by `apsp-run --error-json` so
    /// harnesses can match on the kind without parsing `Debug` output.
    pub fn as_str(self) -> &'static str {
        match self {
            ApspErrorKind::DeviceTooSmall => "DeviceTooSmall",
            ApspErrorKind::OutOfDeviceMemory => "OutOfDeviceMemory",
            ApspErrorKind::Storage => "Storage",
            ApspErrorKind::InvalidInput => "InvalidInput",
            ApspErrorKind::Corruption => "Corruption",
            ApspErrorKind::DeadlineExceeded => "DeadlineExceeded",
            ApspErrorKind::Cancelled => "Cancelled",
            ApspErrorKind::Stalled => "Stalled",
            ApspErrorKind::SilentCorruption => "SilentCorruption",
        }
    }

    /// Whether the retry machinery may re-attempt after this kind.
    ///
    /// Only device allocation failures are transient: the drivers shrink
    /// their working set and try again. Everything else is fatal to the
    /// current attempt — storage errors indict durable state, deadline /
    /// cancellation are explicit orders to stop, and a stall means this
    /// algorithm should not simply be re-run (the fallback chain may
    /// still pick a *different* one). Silent corruption is *not*
    /// transient in this sense either — it has its own scoped recovery
    /// ladder (panel recompute → round replay → fallback) rather than
    /// the blind re-attempt the transient path implies.
    pub fn is_transient(self) -> bool {
        matches!(self, ApspErrorKind::OutOfDeviceMemory)
    }
}

impl ApspError {
    /// The error's coarse classification.
    pub fn kind(&self) -> ApspErrorKind {
        match self {
            ApspError::DeviceTooSmall { .. } => ApspErrorKind::DeviceTooSmall,
            ApspError::OutOfDeviceMemory(_) => ApspErrorKind::OutOfDeviceMemory,
            ApspError::Storage(_) => ApspErrorKind::Storage,
            ApspError::InvalidInput(_) => ApspErrorKind::InvalidInput,
            ApspError::Corruption { .. } => ApspErrorKind::Corruption,
            ApspError::DeadlineExceeded { .. } => ApspErrorKind::DeadlineExceeded,
            ApspError::Cancelled { .. } => ApspErrorKind::Cancelled,
            ApspError::Stalled { .. } => ApspErrorKind::Stalled,
            ApspError::SilentCorruption { .. } => ApspErrorKind::SilentCorruption,
        }
    }
}

impl std::fmt::Display for ApspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApspError::DeviceTooSmall { algorithm, detail } => {
                write!(f, "device too small for {algorithm}: {detail}")
            }
            ApspError::OutOfDeviceMemory(e) => write!(f, "{e}"),
            ApspError::Storage(e) => write!(f, "tile store I/O error: {e}"),
            ApspError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ApspError::Corruption { detail } => {
                write!(f, "durable state corrupted: {detail}")
            }
            ApspError::DeadlineExceeded { detail } => {
                write!(f, "deadline exceeded: {detail}")
            }
            ApspError::Cancelled { detail } => write!(f, "run cancelled: {detail}"),
            ApspError::Stalled { detail } => write!(f, "run stalled: {detail}"),
            ApspError::SilentCorruption {
                panel,
                round,
                detail,
            } => {
                if *panel == usize::MAX {
                    write!(f, "silent data corruption at round {round}: {detail}")
                } else {
                    write!(
                        f,
                        "silent data corruption in panel {panel} at round {round}: {detail}"
                    )
                }
            }
        }
    }
}

impl std::error::Error for ApspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApspError::OutOfDeviceMemory(e) => Some(e),
            ApspError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OutOfDeviceMemory> for ApspError {
    fn from(e: OutOfDeviceMemory) -> Self {
        ApspError::OutOfDeviceMemory(e)
    }
}

/// Marker payload carried inside an `io::Error` when a tile-store SDC
/// guard trips. Like [`crate::supervisor::CancelledMark`], it lets the
/// detection surface through the store's `io::Result` plumbing and
/// re-type itself into [`ApspError::SilentCorruption`] at the `?`
/// boundary instead of being misfiled as a storage failure.
#[derive(Debug)]
pub(crate) struct SdcMark {
    pub panel: usize,
    pub round: usize,
    pub detail: String,
}

impl std::fmt::Display for SdcMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sdc guard tripped: {}", self.detail)
    }
}

impl std::error::Error for SdcMark {}

/// Marker payload for durable-state corruption detected inside the tile
/// store's `io::Result` paths (e.g. a persisted spill file whose panel
/// checksums no longer match on first read). Re-typed into
/// [`ApspError::Corruption`] at the `?` boundary.
#[derive(Debug)]
pub(crate) struct CorruptionMark {
    pub detail: String,
}

impl std::fmt::Display for CorruptionMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for CorruptionMark {}

impl From<std::io::Error> for ApspError {
    fn from(e: std::io::Error) -> Self {
        // Cancellation observed inside the store's I/O loops travels as an
        // `io::Error` wrapping a marker so it can surface through the same
        // `?` plumbing as real storage failures, but typed correctly. SDC
        // and durable-corruption detections use the same trick.
        if e.get_ref()
            .is_some_and(|inner| inner.is::<crate::supervisor::CancelledMark>())
        {
            return ApspError::Cancelled {
                detail: e.to_string(),
            };
        }
        if let Some(mark) = e
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<SdcMark>())
        {
            return ApspError::SilentCorruption {
                panel: mark.panel,
                round: mark.round,
                detail: mark.detail.clone(),
            };
        }
        if let Some(mark) = e
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<CorruptionMark>())
        {
            return ApspError::Corruption {
                detail: mark.detail.clone(),
            };
        }
        ApspError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::CancelledMark;

    #[test]
    fn display_is_informative() {
        let e = ApspError::DeviceTooSmall {
            algorithm: "boundary",
            detail: "bound matrix needs 1 GiB".into(),
        };
        assert!(e.to_string().contains("boundary"));
        let io = ApspError::from(std::io::Error::other("disk full"));
        assert!(io.to_string().contains("disk full"));
        let c = ApspError::Corruption {
            detail: "manifest truncated".into(),
        };
        assert_eq!(c.kind(), ApspErrorKind::Corruption);
        assert!(c.to_string().contains("manifest truncated"));
        let d = ApspError::DeadlineExceeded {
            detail: "budget of 5ms spent at round 3".into(),
        };
        assert!(d.to_string().contains("deadline"));
        let s = ApspError::Stalled {
            detail: "no barrier for 9s".into(),
        };
        assert!(s.to_string().contains("stalled"));
        let sdc = ApspError::SilentCorruption {
            panel: 3,
            round: 7,
            detail: "row 201 checksum mismatch".into(),
        };
        assert_eq!(sdc.kind(), ApspErrorKind::SilentCorruption);
        assert!(sdc.to_string().contains("panel 3"));
        assert!(sdc.to_string().contains("round 7"));
        let unlocated = ApspError::SilentCorruption {
            panel: usize::MAX,
            round: 2,
            detail: "row sums increased".into(),
        };
        assert!(!unlocated.to_string().contains("panel"));
        assert_eq!(ApspErrorKind::SilentCorruption.as_str(), "SilentCorruption");
    }

    #[test]
    fn cancelled_marker_io_errors_become_typed_cancellations() {
        let io = std::io::Error::other(CancelledMark);
        let e = ApspError::from(io);
        assert_eq!(e.kind(), ApspErrorKind::Cancelled);
        let plain = ApspError::from(std::io::Error::other("short write"));
        assert_eq!(plain.kind(), ApspErrorKind::Storage);
    }

    #[test]
    fn marker_io_errors_become_typed_sdc_and_corruption() {
        let io = std::io::Error::other(SdcMark {
            panel: 2,
            round: 5,
            detail: "row 130 checksum mismatch".into(),
        });
        match ApspError::from(io) {
            ApspError::SilentCorruption {
                panel,
                round,
                detail,
            } => {
                assert_eq!((panel, round), (2, 5));
                assert!(detail.contains("row 130"));
            }
            other => panic!("wrong re-typing: {other:?}"),
        }
        let io = std::io::Error::other(CorruptionMark {
            detail: "panel 1 of spill file fails its checksum".into(),
        });
        let e = ApspError::from(io);
        assert_eq!(e.kind(), ApspErrorKind::Corruption);
        assert!(e.to_string().contains("panel 1"));
    }

    /// Every variant maps to exactly one kind and one transient/fatal
    /// class, so a new variant can't silently skip the retry classifier.
    #[test]
    fn classification_is_exhaustive() {
        let oom = || OutOfDeviceMemory {
            requested: 8,
            available: 4,
            capacity: 16,
        };
        let every_variant: Vec<ApspError> = vec![
            ApspError::DeviceTooSmall {
                algorithm: "fw",
                detail: String::new(),
            },
            ApspError::OutOfDeviceMemory(oom()),
            ApspError::Storage(std::io::Error::other("x")),
            ApspError::InvalidInput(String::new()),
            ApspError::Corruption {
                detail: String::new(),
            },
            ApspError::DeadlineExceeded {
                detail: String::new(),
            },
            ApspError::Cancelled {
                detail: String::new(),
            },
            ApspError::Stalled {
                detail: String::new(),
            },
            ApspError::SilentCorruption {
                panel: 0,
                round: 0,
                detail: String::new(),
            },
        ];
        // The list above must cover every variant exactly once. This match
        // fails to compile if a variant is added without extending it.
        for e in &every_variant {
            match e {
                ApspError::DeviceTooSmall { .. }
                | ApspError::OutOfDeviceMemory(_)
                | ApspError::Storage(_)
                | ApspError::InvalidInput(_)
                | ApspError::Corruption { .. }
                | ApspError::DeadlineExceeded { .. }
                | ApspError::Cancelled { .. }
                | ApspError::Stalled { .. }
                | ApspError::SilentCorruption { .. } => {}
            }
        }
        let kinds: Vec<ApspErrorKind> = every_variant.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            ApspErrorKind::ALL.to_vec(),
            "each variant must map to its own kind, in declaration order"
        );
        // Transient/fatal classes: only OOM is retryable in place.
        for kind in ApspErrorKind::ALL {
            assert_eq!(
                kind.is_transient(),
                kind == ApspErrorKind::OutOfDeviceMemory,
                "{kind:?} has the wrong transient/fatal class"
            );
        }
    }
}
