//! Error type for the out-of-core APSP implementations.

use apsp_gpu_sim::OutOfDeviceMemory;

/// Anything that can go wrong while computing APSP out-of-core.
#[derive(Debug)]
pub enum ApspError {
    /// The device cannot hold even the minimum working set (e.g. one
    /// matrix tile plus the graph) for the chosen algorithm.
    DeviceTooSmall {
        /// Which algorithm gave up.
        algorithm: &'static str,
        /// Human-readable sizing detail.
        detail: String,
    },
    /// A device allocation failed unexpectedly mid-run.
    OutOfDeviceMemory(OutOfDeviceMemory),
    /// The host-side tile store failed (disk-backed stores only).
    Storage(std::io::Error),
    /// The input graph is unusable (e.g. zero vertices where the
    /// algorithm needs at least one).
    InvalidInput(String),
    /// Durable state failed validation: a checkpoint manifest is
    /// truncated or fails its self-checksum, a persisted matrix does not
    /// match the checksums recorded for it, or a manifest was written
    /// for a different graph than the one being resumed. Never silently
    /// recovered from — resuming corrupt state would produce wrong
    /// distances.
    Corruption {
        /// What failed validation and how.
        detail: String,
    },
}

/// Coarse classification of an [`ApspError`] — what conformance
/// assertions match on, so they stay stable as `detail` strings evolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApspErrorKind {
    DeviceTooSmall,
    OutOfDeviceMemory,
    Storage,
    InvalidInput,
    Corruption,
}

impl ApspError {
    /// The error's coarse classification.
    pub fn kind(&self) -> ApspErrorKind {
        match self {
            ApspError::DeviceTooSmall { .. } => ApspErrorKind::DeviceTooSmall,
            ApspError::OutOfDeviceMemory(_) => ApspErrorKind::OutOfDeviceMemory,
            ApspError::Storage(_) => ApspErrorKind::Storage,
            ApspError::InvalidInput(_) => ApspErrorKind::InvalidInput,
            ApspError::Corruption { .. } => ApspErrorKind::Corruption,
        }
    }
}

impl std::fmt::Display for ApspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApspError::DeviceTooSmall { algorithm, detail } => {
                write!(f, "device too small for {algorithm}: {detail}")
            }
            ApspError::OutOfDeviceMemory(e) => write!(f, "{e}"),
            ApspError::Storage(e) => write!(f, "tile store I/O error: {e}"),
            ApspError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ApspError::Corruption { detail } => {
                write!(f, "durable state corrupted: {detail}")
            }
        }
    }
}

impl std::error::Error for ApspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApspError::OutOfDeviceMemory(e) => Some(e),
            ApspError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OutOfDeviceMemory> for ApspError {
    fn from(e: OutOfDeviceMemory) -> Self {
        ApspError::OutOfDeviceMemory(e)
    }
}

impl From<std::io::Error> for ApspError {
    fn from(e: std::io::Error) -> Self {
        ApspError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ApspError::DeviceTooSmall {
            algorithm: "boundary",
            detail: "bound matrix needs 1 GiB".into(),
        };
        assert!(e.to_string().contains("boundary"));
        let io = ApspError::from(std::io::Error::other("disk full"));
        assert!(io.to_string().contains("disk full"));
        let c = ApspError::Corruption {
            detail: "manifest truncated".into(),
        };
        assert_eq!(c.kind(), ApspErrorKind::Corruption);
        assert!(c.to_string().contains("manifest truncated"));
    }
}
