//! Out-of-core GPU APSP — the paper's contribution.
//!
//! Three out-of-core implementations compute the full `n × n` distance
//! matrix of graphs whose output exceeds device memory:
//!
//! * [`ooc_fw`] — Algorithm 1, the out-of-core blocked Floyd-Warshall:
//!   `n_d × n_d` device-sized tiles, three-stage rounds, `O(n_d · n²)`
//!   data movement;
//! * [`ooc_johnson`] — Algorithm 2, batched Johnson's: `bat` Near-Far
//!   SSSP instances per kernel (one per thread block), `O(n²)` data
//!   movement, optional dynamic parallelism for high-degree vertices;
//! * [`ooc_boundary`] — Algorithm 3, the boundary algorithm: k-way
//!   partition, per-component Floyd-Warshall (dist₂), boundary-graph
//!   Floyd-Warshall (dist₃), and the chained min-plus products
//!   `A(i,j) = C2B[i] ⊗ bound(i,j) ⊗ B2C[j]` (dist₄), with the paper's
//!   transfer-batching and compute/transfer-overlap optimizations.
//!
//! [`selector`] implements Section IV: the density filter plus the three
//! cost models, able to pick the winning implementation without running
//! the full computation. [`api::apsp`] is the unified front-end.
//!
//! Results land in a [`tile_store::TileStore`] — host RAM, or a disk
//! directory when even the host cannot hold the output (the paper's
//! Table IV regime).

pub mod api;
pub mod calibration;
pub mod checkpoint;
pub mod error;
pub mod in_core;
pub mod multi_gpu;
pub mod ooc_boundary;
pub mod ooc_fw;
pub mod ooc_johnson;
pub mod options;
pub mod paths;
pub mod sdc;
pub mod selector;
pub mod service;
pub mod supervisor;
pub mod telemetry;
pub mod tile_store;
pub mod verify;

pub use api::{apsp, ApspResult};
pub use calibration::{
    profile_fingerprint, CalibrationStore, CoeffKey, CoeffState, EstimateParts, RefitCoefficients,
};
pub use checkpoint::{graph_fingerprint, Checkpoint, Manifest, Progress};
pub use error::{ApspError, ApspErrorKind};
pub use multi_gpu::{
    ooc_boundary_multi, ooc_boundary_multi_checkpointed,
    ooc_boundary_multi_checkpointed_supervised, ooc_boundary_multi_supervised, parse_fleet,
    MultiGpuStats,
};
pub use options::{
    Algorithm, ApspOptions, BoundaryOptions, CheckpointOptions, JohnsonOptions, SdcGuardMode,
};
pub use sdc::SdcGuard;
pub use selector::{Candidate, CostModels, Selection, SelectorConfig};
pub use service::{
    cache_key, options_fingerprint, ApspService, CacheKey, CancelOutcome, CompletedJob, FailedJob,
    JobFault, JobId, JobRequest, JobSpec, JobState, ResultRows, ServiceConfig, ServiceCounters,
    ServiceError, ServiceErrorKind,
};
pub use supervisor::{
    CancelToken, FallbackEvent, RetryPolicy, SupervisionEvent, SupervisionOptions, Supervisor,
};
pub use telemetry::{CalibrationRecord, PhaseSpan, RunReport, Telemetry};
pub use tile_store::{DiskFault, DiskFaultPlan, StorageBackend, TileStore};
