//! Persisted per-device-profile selector calibration: online refit of
//! the cost-model coefficients from realized run times.
//!
//! The selector's seed constants (`T₀` for Floyd-Warshall and the
//! boundary anchor, the per-bucket `c_unit`s, Johnson's extrapolation)
//! are measured once per profile on small training workloads, so they
//! drift at production sizes — the kernel-bench artifact shows the FW
//! model ~3.4× optimistic. This module closes the loop PR 5's telemetry
//! opened: every run that executes an algorithm pairs the model's
//! *seed* compute prediction with the realized compute seconds, and the
//! log-ratio of the two feeds a per-coefficient multiplicative
//! correction that `select`/`select_masked` consult before the seed
//! constants.
//!
//! **Refit math.** Each coefficient keeps `(count, Σ round(ln r · 10⁶))`
//! where `r = realized_compute / seed_predicted_compute`, each log-ratio
//! clamped to `±ln 1024`. The applied correction is the geometric mean
//! `scale = exp(Σ / (count · 10⁶))`:
//!
//! * *bounded*: every summand is clamped, so `scale ∈ [1/1024, 1024]`
//!   and is always finite and positive;
//! * *order-deterministic*: the state is an integer sum, so any
//!   permutation of the same observations produces the identical state
//!   and hence a byte-identical store file;
//! * *fixed point*: observing the model's own refitted prediction adds
//!   `ln(scale)` to a sum whose mean is already `ln(scale)` — the
//!   correction does not move (up to the 10⁻⁶ quantization).
//!
//! **Persistence.** [`CalibrationStore`] keeps one file per device
//! profile, named by a structural fingerprint of every profile constant,
//! written with the same atomic discipline as the checkpoint manifest
//! (temp sibling + `sync_all` + rename) and the same failure policy: a
//! *missing* file is a fresh start (identity corrections); a
//! *present-and-invalid* one — truncated, bit-flipped, or from another
//! format version — is a typed [`ApspError::Corruption`], and the
//! front-end falls back to the seed constants rather than trusting it.

use crate::error::ApspError;
use crate::tile_store::{fnv1a, FNV_OFFSET_BASIS};
use apsp_gpu_sim::DeviceProfile;
use std::io;
use std::path::{Path, PathBuf};

/// Store format version this build writes and understands.
pub const CALIBRATION_VERSION: u32 = 1;

/// Backend key [`CalibrationStore::open`] / [`CalibrationStore::fresh`]
/// assume; its store file keeps the legacy unsuffixed name.
pub const DEFAULT_BACKEND: &str = "parallel";

/// Log-ratio clamp: one observation can move a coefficient by at most
/// a factor of 1024 in either direction.
const LN_CLAMP: f64 = 6.931471805599453; // ln(1024)

/// Micro-units per natural-log unit in the integer accumulator.
const MICRO: f64 = 1e6;

/// [`LN_CLAMP`] in quantized micro-units (floored, so the bound holds
/// after rounding).
const LN_CLAMP_MICRO: i64 = 6_931_471;

/// Structural fingerprint of a device profile: FNV-1a over the name and
/// every numeric constant (floats by bit pattern). Two profiles share a
/// calibration file only when every constant matches — the same
/// comparison [`crate::selector::CostModels::calibrate_cached`] uses.
pub fn profile_fingerprint(p: &DeviceProfile) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    h = fnv1a(p.name.as_bytes(), h);
    h = fnv1a(&p.memory_bytes.to_le_bytes(), h);
    h = fnv1a(&(p.sm_count as u64).to_le_bytes(), h);
    h = fnv1a(&(p.saturating_blocks as u64).to_le_bytes(), h);
    for f in [
        p.compute_ops_per_sec,
        p.mem_bandwidth,
        p.h2d_bytes_per_sec,
        p.d2h_bytes_per_sec,
        p.pageable_penalty,
        p.kernel_launch_overhead,
        p.dynamic_launch_overhead,
        p.transfer_latency,
        p.frontier_iter_floor,
    ] {
        h = fnv1a(&f.to_bits().to_le_bytes(), h);
    }
    h
}

/// The refittable coefficient behind one cost-model regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoeffKey {
    /// Floyd-Warshall's `T₀` (the cubic anchor).
    FwT0,
    /// Johnson's extrapolation constant (`T · n_b / k`).
    JohnsonC,
    /// The boundary small-separator anchor (`T₀ · (n/n₀)^{3/2}`).
    BoundaryT0,
    /// The boundary large-separator unit cost (`N_op · c_unit`).
    BoundaryCUnit,
}

impl CoeffKey {
    /// Every key, in serialization order.
    pub const ALL: [CoeffKey; 4] = [
        CoeffKey::FwT0,
        CoeffKey::JohnsonC,
        CoeffKey::BoundaryT0,
        CoeffKey::BoundaryCUnit,
    ];

    /// Stable tag used in the store file and reports.
    pub fn tag(self) -> &'static str {
        match self {
            CoeffKey::FwT0 => "fw_t0",
            CoeffKey::JohnsonC => "johnson_c",
            CoeffKey::BoundaryT0 => "boundary_t0",
            CoeffKey::BoundaryCUnit => "boundary_c_unit",
        }
    }

    fn index(self) -> usize {
        match self {
            CoeffKey::FwT0 => 0,
            CoeffKey::JohnsonC => 1,
            CoeffKey::BoundaryT0 => 2,
            CoeffKey::BoundaryCUnit => 3,
        }
    }
}

/// One coefficient's accumulated evidence: observation count and the
/// integer micro-unit sum of clamped log-ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoeffState {
    /// Observations folded in.
    pub count: u64,
    /// `Σ round(ln(realized/predicted) · 10⁶)`, each term clamped to
    /// `±ln(1024)·10⁶`.
    pub sum_micro: i64,
}

impl CoeffState {
    /// The multiplicative correction this state implies: the geometric
    /// mean of the observed ratios (1.0 with no evidence).
    pub fn scale(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            (self.sum_micro as f64 / (MICRO * self.count as f64)).exp()
        }
    }
}

/// The four per-coefficient refit states — the learned part of a
/// calibration store. `Default` is the identity (seed constants).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefitCoefficients {
    states: [CoeffState; 4],
}

impl RefitCoefficients {
    /// The identity correction (every scale 1.0).
    pub fn identity() -> Self {
        RefitCoefficients::default()
    }

    /// The correction factor applied to `key`'s compute term.
    pub fn scale(&self, key: CoeffKey) -> f64 {
        self.states[key.index()].scale()
    }

    /// The raw state behind `key`.
    pub fn state(&self, key: CoeffKey) -> CoeffState {
        self.states[key.index()]
    }

    /// Total observations across all coefficients.
    pub fn observations(&self) -> u64 {
        self.states.iter().map(|s| s.count).sum()
    }

    /// Fold in one realized run. `seed_compute_s` is the model's
    /// *seed-constant* compute prediction (no refit applied),
    /// `predicted_transfer_s` its transfer prediction, `realized_s` the
    /// run's realized seconds. Non-finite or non-positive inputs are
    /// ignored — an unfittable observation must never poison the state.
    pub fn observe(
        &mut self,
        key: CoeffKey,
        seed_compute_s: f64,
        predicted_transfer_s: f64,
        realized_s: f64,
    ) {
        let fittable = seed_compute_s.is_finite()
            && seed_compute_s > 0.0
            && realized_s.is_finite()
            && realized_s > 0.0
            && predicted_transfer_s.is_finite()
            && predicted_transfer_s >= 0.0;
        if !fittable {
            return;
        }
        // The refit targets the compute term only: subtract the model's
        // transfer prediction from the realized total, flooring so a
        // transfer-dominated run still yields a positive observation.
        let observed_compute = (realized_s - predicted_transfer_s)
            .max(realized_s * 1e-2)
            .max(1e-12);
        let l = (observed_compute / seed_compute_s)
            .ln()
            .clamp(-LN_CLAMP, LN_CLAMP);
        let st = &mut self.states[key.index()];
        st.count += 1;
        // Clamp after quantizing too: `round` can push the micro value one
        // unit past `±LN_CLAMP·1e6`, which would let the per-coefficient
        // scale creep beyond the documented [1/1024, 1024] bound.
        st.sum_micro += ((l * MICRO).round() as i64).clamp(-LN_CLAMP_MICRO, LN_CLAMP_MICRO);
    }
}

/// The seed-constant decomposition of one candidate's estimate: the
/// compute term (before any refit multiplier), the transfer term, and
/// the coefficient the compute term is anchored on. Carried on
/// [`crate::selector::Candidate`] so the run's realized seconds can be
/// fed back to the right coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateParts {
    /// Coefficient the compute term scales with.
    pub key: CoeffKey,
    /// Seed-constant compute seconds (may be infinite for an infeasible
    /// boundary plan).
    pub compute_seed: f64,
    /// Transfer seconds (refit never touches this term).
    pub transfer: f64,
}

impl EstimateParts {
    /// The estimate under the seed constants.
    pub fn seed_seconds(&self) -> f64 {
        self.compute_seed + self.transfer
    }

    /// The estimate with `refit`'s correction applied to the compute
    /// term.
    pub fn refitted_seconds(&self, refit: &RefitCoefficients) -> f64 {
        self.compute_seed * refit.scale(self.key) + self.transfer
    }
}

/// Handle to one device profile's persisted calibration state.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationStore {
    path: PathBuf,
    fingerprint: u64,
    profile_name: String,
    /// Committed runs folded into the store.
    runs: u64,
    coeffs: RefitCoefficients,
}

impl CalibrationStore {
    /// Open (or initialize) the store for `profile` under `dir`, keyed
    /// to the default (`"parallel"`) execution backend. See
    /// [`CalibrationStore::open_for`].
    pub fn open<P: AsRef<Path>>(dir: P, profile: &DeviceProfile) -> Result<Self, ApspError> {
        CalibrationStore::open_for(dir, profile, DEFAULT_BACKEND)
    }

    /// Open (or initialize) the store for `profile` under `dir`, keyed
    /// to one host execution `backend` (`"scalar"`, `"parallel"`,
    /// `"simd"`). Observations made under one backend never steer
    /// selections made under another — realized timings can shift with
    /// the host kernel even when the modeled device time does not.
    ///
    /// A missing file is a fresh store with identity corrections; a
    /// present-but-invalid file is [`ApspError::Corruption`] — callers
    /// that want to proceed anyway (the front-end does) should fall
    /// back to [`CalibrationStore::fresh_for`].
    pub fn open_for<P: AsRef<Path>>(
        dir: P,
        profile: &DeviceProfile,
        backend: &str,
    ) -> Result<Self, ApspError> {
        let mut store = CalibrationStore::fresh_for(&dir, profile, backend);
        let bytes = match std::fs::read(&store.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e.into()),
        };
        let (runs, coeffs) =
            parse_store(&bytes, store.fingerprint).map_err(|detail| ApspError::Corruption {
                detail: format!("{}: {detail}", store.path.display()),
            })?;
        store.runs = runs;
        store.coeffs = coeffs;
        Ok(store)
    }

    /// A fresh (identity) store for `profile` under `dir` at the
    /// default backend key; see [`CalibrationStore::fresh_for`].
    pub fn fresh<P: AsRef<Path>>(dir: P, profile: &DeviceProfile) -> Self {
        CalibrationStore::fresh_for(dir, profile, DEFAULT_BACKEND)
    }

    /// A fresh (identity) store for `profile` under `dir` keyed to
    /// `backend`, ignoring any file already there. Nothing touches the
    /// disk until [`CalibrationStore::commit`]. The default backend
    /// keeps the legacy unsuffixed file name, so stores persisted
    /// before backend keying existed keep loading.
    pub fn fresh_for<P: AsRef<Path>>(dir: P, profile: &DeviceProfile, backend: &str) -> Self {
        let fingerprint = profile_fingerprint(profile);
        let file = if backend == DEFAULT_BACKEND {
            format!("profile-{fingerprint:016x}.cal")
        } else {
            format!("profile-{fingerprint:016x}-{backend}.cal")
        };
        CalibrationStore {
            path: dir.as_ref().join(file),
            fingerprint,
            profile_name: profile.name.clone(),
            runs: 0,
            coeffs: RefitCoefficients::identity(),
        }
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The learned corrections.
    pub fn coeffs(&self) -> &RefitCoefficients {
        &self.coeffs
    }

    /// Committed runs folded into the store.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Fold one realized run into the store (see
    /// [`RefitCoefficients::observe`]) and bump the run counter.
    pub fn observe_run(&mut self, parts: &EstimateParts, realized_s: f64) {
        self.coeffs
            .observe(parts.key, parts.compute_seed, parts.transfer, realized_s);
        self.runs += 1;
    }

    /// Durably write the store: serialize to a temp sibling, `sync_all`,
    /// rename into place. A crash at any point leaves either the
    /// previous version or the new one — never a torn file.
    pub fn commit(&self) -> Result<(), ApspError> {
        self.commit_with_kill(None).map_err(Into::into)
    }

    /// [`CalibrationStore::commit`] with crash injection for the
    /// conformance suite: when `kill_after_ops` is `Some(k)`, the commit
    /// aborts (returning `Interrupted`) after `k` file operations
    /// (create, write, sync, rename), leaving whatever the real crash
    /// would leave.
    pub fn commit_with_kill(&self, kill_after_ops: Option<u32>) -> io::Result<()> {
        std::fs::create_dir_all(self.path.parent().unwrap_or_else(|| Path::new(".")))?;
        let body = self.serialize();
        let tmp = self
            .path
            .with_file_name(format!(".cal.tmp.{}", std::process::id()));
        let mut ops = 0u32;
        let op = |ops: &mut u32| -> io::Result<()> {
            if let Some(k) = kill_after_ops {
                if *ops >= k {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected crash point",
                    ));
                }
            }
            *ops += 1;
            Ok(())
        };
        let result = (|| -> io::Result<()> {
            use std::io::Write;
            op(&mut ops)?;
            let mut f = std::fs::File::create(&tmp)?;
            op(&mut ops)?;
            f.write_all(body.as_bytes())?;
            op(&mut ops)?;
            f.sync_all()?;
            op(&mut ops)?;
            std::fs::rename(&tmp, &self.path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Line-oriented text encoding, self-checksummed like the checkpoint
    /// manifest: the trailing `end <hex>` line carries the FNV-1a of
    /// every preceding byte.
    fn serialize(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("apsp-calibration {CALIBRATION_VERSION}\n"));
        s.push_str(&format!(
            "profile {:016x} {}\n",
            self.fingerprint, self.profile_name
        ));
        s.push_str(&format!("runs {}\n", self.runs));
        for key in CoeffKey::ALL {
            let st = self.coeffs.state(key);
            s.push_str(&format!(
                "coeff {} {} {}\n",
                key.tag(),
                st.count,
                st.sum_micro
            ));
        }
        let sum = fnv1a(s.as_bytes(), FNV_OFFSET_BASIS);
        s.push_str(&format!("end {sum:016x}\n"));
        s
    }

    /// Human-readable summary for `--calibration-report`: one line per
    /// coefficient with its evidence and the correction in force.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "calibration store {} (profile \"{}\", fingerprint {:016x}, {} runs)\n",
            self.path.display(),
            self.profile_name,
            self.fingerprint,
            self.runs
        ));
        for key in CoeffKey::ALL {
            let st = self.coeffs.state(key);
            s.push_str(&format!(
                "  {:<16} observations {:>4}  scale {:.6}\n",
                key.tag(),
                st.count,
                st.scale()
            ));
        }
        s
    }
}

/// Inverse of [`CalibrationStore::serialize`]; `expected_fingerprint`
/// guards against a file renamed across profiles. Failure detail strings
/// are wrapped in [`ApspError::Corruption`] by the caller.
fn parse_store(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<(u64, RefitCoefficients), String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "store is not UTF-8".to_string())?;
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let (body_end, end_line) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => (0, trimmed),
    };
    let declared = end_line
        .strip_prefix("end ")
        .ok_or("store is truncated (no `end` checksum line)")?;
    let declared =
        u64::from_str_radix(declared.trim(), 16).map_err(|_| "unparseable `end` checksum")?;
    let actual = fnv1a(&text.as_bytes()[..body_end], FNV_OFFSET_BASIS);
    if actual != declared {
        return Err(format!(
            "self-checksum mismatch (recorded {declared:016x}, content hashes to {actual:016x}) — truncated or bit-rotted"
        ));
    }

    let mut lines = text[..body_end].lines();
    let header = lines.next().ok_or("empty store")?;
    let version: u32 = header
        .strip_prefix("apsp-calibration ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or("missing `apsp-calibration <version>` header")?;
    if version != CALIBRATION_VERSION {
        return Err(format!(
            "store version {version} is not supported (this build writes {CALIBRATION_VERSION})"
        ));
    }

    let mut runs = None;
    let mut coeffs = RefitCoefficients::identity();
    let mut seen = [false; 4];
    for line in lines {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "profile" => {
                let fp = rest.split_whitespace().next().unwrap_or("");
                let fp = u64::from_str_radix(fp, 16).map_err(|_| "bad profile fingerprint")?;
                if fp != expected_fingerprint {
                    return Err(format!(
                        "store was written for a different device profile \
                         (fingerprint {fp:016x}, this profile is {expected_fingerprint:016x})"
                    ));
                }
            }
            "runs" => runs = Some(rest.trim().parse::<u64>().map_err(|_| "bad run count")?),
            "coeff" => {
                let mut it = rest.split_whitespace();
                let tag = it.next().ok_or("coeff line missing tag")?;
                let count: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("coeff line missing count")?;
                let sum_micro: i64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("coeff line missing sum")?;
                let key = CoeffKey::ALL
                    .into_iter()
                    .find(|k| k.tag() == tag)
                    .ok_or_else(|| format!("unknown coefficient {tag:?}"))?;
                coeffs.states[key.index()] = CoeffState { count, sum_micro };
                seen[key.index()] = true;
            }
            other => return Err(format!("unknown store line {other:?}")),
        }
    }
    let runs = runs.ok_or("store has no `runs` line")?;
    if !seen.iter().all(|&s| s) {
        return Err("store is missing a coefficient line".to_string());
    }
    Ok((runs, coeffs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("apsp_calibration").join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_structural() {
        let v = DeviceProfile::v100();
        assert_eq!(profile_fingerprint(&v), profile_fingerprint(&v.clone()));
        assert_ne!(
            profile_fingerprint(&v),
            profile_fingerprint(&DeviceProfile::k80())
        );
        // Any constant participates, not just the name.
        let mut tweaked = v.clone();
        tweaked.transfer_latency *= 2.0;
        assert_ne!(profile_fingerprint(&v), profile_fingerprint(&tweaked));
    }

    #[test]
    fn identity_until_observed_then_tracks_ratio() {
        let mut r = RefitCoefficients::identity();
        assert_eq!(r.scale(CoeffKey::FwT0), 1.0);
        // Realized 3.4× the seed compute prediction.
        r.observe(CoeffKey::FwT0, 1.0e-4, 0.0, 3.4e-4);
        assert!((r.scale(CoeffKey::FwT0) - 3.4).abs() < 1e-4);
        // Other coefficients untouched.
        assert_eq!(r.scale(CoeffKey::JohnsonC), 1.0);
        // A second identical observation leaves the geometric mean put.
        r.observe(CoeffKey::FwT0, 1.0e-4, 0.0, 3.4e-4);
        assert!((r.scale(CoeffKey::FwT0) - 3.4).abs() < 1e-4);
    }

    #[test]
    fn transfer_term_is_subtracted_before_the_ratio() {
        let mut r = RefitCoefficients::identity();
        // Seed compute 1ms, transfer 4ms, realized 6ms ⇒ observed
        // compute 2ms ⇒ scale 2.
        r.observe(CoeffKey::JohnsonC, 1.0e-3, 4.0e-3, 6.0e-3);
        assert!((r.scale(CoeffKey::JohnsonC) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut r = RefitCoefficients::identity();
        for (c, t, re) in [
            (f64::INFINITY, 0.0, 1.0),
            (f64::NAN, 0.0, 1.0),
            (0.0, 0.0, 1.0),
            (-1.0, 0.0, 1.0),
            (1.0, 0.0, f64::NAN),
            (1.0, 0.0, 0.0),
            (1.0, f64::NAN, 1.0),
            (1.0, -1.0, 1.0),
        ] {
            r.observe(CoeffKey::BoundaryT0, c, t, re);
        }
        assert_eq!(r.state(CoeffKey::BoundaryT0).count, 0);
        assert_eq!(r.scale(CoeffKey::BoundaryT0), 1.0);
    }

    #[test]
    fn store_round_trips_through_disk() {
        let dir = tmp_dir("round_trip");
        let profile = DeviceProfile::v100();
        let mut store = CalibrationStore::open(&dir, &profile).unwrap();
        assert_eq!(store.runs(), 0);
        store.observe_run(
            &EstimateParts {
                key: CoeffKey::FwT0,
                compute_seed: 1.0e-4,
                transfer: 2.0e-5,
            },
            3.6e-4,
        );
        store.commit().unwrap();
        let reopened = CalibrationStore::open(&dir, &profile).unwrap();
        assert_eq!(reopened, store);
        assert_eq!(reopened.runs(), 1);
        assert!(reopened.coeffs().scale(CoeffKey::FwT0) > 3.0);
        // A different profile gets its own file in the same directory.
        let other = CalibrationStore::open(&dir, &DeviceProfile::k80()).unwrap();
        assert_ne!(other.path(), store.path());
        assert_eq!(other.runs(), 0);
    }

    #[test]
    fn report_names_every_coefficient() {
        let store = CalibrationStore::fresh(tmp_dir("report"), &DeviceProfile::v100());
        let report = store.report();
        for key in CoeffKey::ALL {
            assert!(report.contains(key.tag()), "{report}");
        }
    }

    proptest! {
        /// Observing the model's own refitted prediction is a fixed
        /// point: the correction in force does not move.
        #[test]
        fn own_prediction_is_a_fixed_point(
            seed_compute in 1e-9f64..1e3,
            transfer in 0.0f64..1e2,
            ratio in 0.01f64..100.0,
            extra in 0u8..20,
        ) {
            let mut r = RefitCoefficients::identity();
            // Build up an arbitrary state first.
            for _ in 0..=extra {
                r.observe(CoeffKey::FwT0, seed_compute, transfer, seed_compute * ratio + transfer);
            }
            let before = r.scale(CoeffKey::FwT0);
            // Feed back exactly what the refitted model now predicts.
            let own = seed_compute * before + transfer;
            r.observe(CoeffKey::FwT0, seed_compute, transfer, own);
            let after = r.scale(CoeffKey::FwT0);
            prop_assert!(
                (after.ln() - before.ln()).abs() < 1e-3,
                "scale moved {before} -> {after}"
            );
        }

        /// Coefficients stay finite and positive under adversarial
        /// observation sequences, including non-finite garbage.
        #[test]
        fn scales_stay_finite_and_positive(
            obs in proptest::collection::vec((0u8..4, 0u8..6, 0.0f64..10.0, 0.0f64..10.0), 1..60),
        ) {
            let mut r = RefitCoefficients::identity();
            for (k, shape, a, b) in obs {
                let key = CoeffKey::ALL[(k as usize) % 4];
                let (compute, realized) = match shape {
                    0 => (a, b),
                    1 => (f64::INFINITY, b),
                    2 => (a, f64::NAN),
                    3 => (1e-300, b * 1e300),
                    4 => (a * 1e300, 1e-300),
                    _ => (f64::NAN, f64::NEG_INFINITY),
                };
                r.observe(key, compute, a.min(b), realized);
            }
            for key in CoeffKey::ALL {
                let s = r.scale(key);
                prop_assert!(s.is_finite() && s > 0.0, "{key:?} scale = {s}");
                prop_assert!((1.0 / 1024.0..=1024.0).contains(&s), "{key:?} scale = {s}");
            }
        }

        /// Refit is order-deterministic: any permutation of the same
        /// observations serializes to a byte-identical store.
        #[test]
        fn permuted_observations_serialize_identically(
            obs in proptest::collection::vec((0u8..4, 1e-6f64..10.0, 0.0f64..1.0, 1e-6f64..10.0), 2..40),
            rot in 1usize..39,
        ) {
            let dir = std::env::temp_dir().join("apsp_calibration_prop");
            let profile = DeviceProfile::v100();
            let apply = |order: &[(u8, f64, f64, f64)]| {
                let mut store = CalibrationStore::fresh(&dir, &profile);
                for &(k, c, t, re) in order {
                    store.observe_run(
                        &EstimateParts {
                            key: CoeffKey::ALL[(k as usize) % 4],
                            compute_seed: c,
                            transfer: t,
                        },
                        re,
                    );
                }
                store.serialize()
            };
            let forward = apply(&obs);
            let mut rotated = obs.clone();
            rotated.rotate_left(rot % obs.len());
            prop_assert_eq!(forward, apply(&rotated));
        }
    }

    #[test]
    fn corruption_modes_are_typed_errors() {
        let dir = tmp_dir("corruption");
        let profile = DeviceProfile::v100();
        let mut store = CalibrationStore::open(&dir, &profile).unwrap();
        store.observe_run(
            &EstimateParts {
                key: CoeffKey::JohnsonC,
                compute_seed: 1.0,
                transfer: 0.1,
            },
            2.0,
        );
        store.commit().unwrap();
        let good = std::fs::read(store.path()).unwrap();

        let expect_corruption = |bytes: &[u8]| {
            std::fs::write(store.path(), bytes).unwrap();
            let err = CalibrationStore::open(&dir, &profile).unwrap_err();
            assert_eq!(err.kind(), crate::ApspErrorKind::Corruption, "{err}");
        };
        // Truncation.
        expect_corruption(&good[..good.len() / 2]);
        // Single bit flip.
        let mut flipped = good.clone();
        flipped[10] ^= 0x01;
        expect_corruption(&flipped);
        // Wrong version (re-checksummed, so only the version check trips).
        let text = String::from_utf8(good.clone()).unwrap();
        let body: String = text
            .lines()
            .filter(|l| !l.starts_with("end "))
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            .replace("apsp-calibration 1", "apsp-calibration 99");
        let sum = fnv1a(body.as_bytes(), FNV_OFFSET_BASIS);
        expect_corruption(format!("{body}end {sum:016x}\n").as_bytes());
        // The original still parses.
        std::fs::write(store.path(), &good).unwrap();
        assert!(CalibrationStore::open(&dir, &profile).is_ok());
    }

    #[test]
    fn kill_points_mid_commit_leave_previous_version_readable() {
        let dir = tmp_dir("kill_points");
        let profile = DeviceProfile::v100();
        let mut store = CalibrationStore::open(&dir, &profile).unwrap();
        store.observe_run(
            &EstimateParts {
                key: CoeffKey::FwT0,
                compute_seed: 1.0,
                transfer: 0.0,
            },
            2.0,
        );
        store.commit().unwrap();
        let committed = CalibrationStore::open(&dir, &profile).unwrap();

        // A second observation, killed at every file-op boundary of its
        // commit: the store on disk must stay exactly the committed one.
        for kill_at in 0..4 {
            let mut next = committed.clone();
            next.observe_run(
                &EstimateParts {
                    key: CoeffKey::FwT0,
                    compute_seed: 1.0,
                    transfer: 0.0,
                },
                8.0,
            );
            let err = next.commit_with_kill(Some(kill_at)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
            let on_disk = CalibrationStore::open(&dir, &profile).unwrap();
            assert_eq!(on_disk, committed, "kill point {kill_at} tore the store");
        }
        // Past the last op the commit completes and the new state lands.
        let mut next = committed.clone();
        next.observe_run(
            &EstimateParts {
                key: CoeffKey::FwT0,
                compute_seed: 1.0,
                transfer: 0.0,
            },
            8.0,
        );
        next.commit_with_kill(Some(4)).unwrap();
        let on_disk = CalibrationStore::open(&dir, &profile).unwrap();
        assert_eq!(on_disk, next);
    }
}
