//! Boundary-first vertex layout for the out-of-core boundary algorithm.
//!
//! The paper's Figure 1(a): after partitioning, vertices are renumbered so
//! that each component occupies a contiguous index range, and within each
//! component the boundary nodes come first. This makes the `C2B`/`B2C`
//! panels of Algorithm 3 contiguous sub-matrices that can be extracted
//! with plain slicing.

use crate::partition::Partition;
use apsp_graph::{CsrGraph, GraphBuilder, VertexId};

/// The renumbering derived from a [`Partition`].
#[derive(Debug, Clone)]
pub struct PartitionLayout {
    /// `perm[new_id] = old_id`.
    perm: Vec<VertexId>,
    /// `inv[old_id] = new_id`.
    inv: Vec<VertexId>,
    /// Component start offsets in the new numbering, length `k + 1`.
    comp_offset: Vec<usize>,
    /// Number of boundary nodes in each component (they occupy the first
    /// `comp_boundary[i]` slots of component `i`'s range).
    comp_boundary: Vec<usize>,
}

impl PartitionLayout {
    /// Compute the layout for `g` under `p`.
    pub fn new(g: &CsrGraph, p: &Partition) -> Self {
        assert_eq!(g.num_vertices(), p.num_vertices());
        let n = g.num_vertices();
        let k = p.k();
        let boundary = p.boundary_flags(g);
        let mut perm = Vec::with_capacity(n);
        let mut comp_offset = Vec::with_capacity(k + 1);
        let mut comp_boundary = Vec::with_capacity(k);
        let parts = p.parts();
        for part in &parts {
            comp_offset.push(perm.len());
            let mut nb = 0usize;
            for &v in part {
                if boundary[v as usize] {
                    perm.push(v);
                    nb += 1;
                }
            }
            for &v in part {
                if !boundary[v as usize] {
                    perm.push(v);
                }
            }
            comp_boundary.push(nb);
        }
        comp_offset.push(perm.len());
        let mut inv = vec![0 as VertexId; n];
        for (new_id, &old_id) in perm.iter().enumerate() {
            inv[old_id as usize] = new_id as VertexId;
        }
        PartitionLayout {
            perm,
            inv,
            comp_offset,
            comp_boundary,
        }
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.comp_boundary.len()
    }

    /// Total number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.perm.len()
    }

    /// Old id of new id.
    #[inline]
    pub fn old_of(&self, new_id: VertexId) -> VertexId {
        self.perm[new_id as usize]
    }

    /// New id of old id.
    #[inline]
    pub fn new_of(&self, old_id: VertexId) -> VertexId {
        self.inv[old_id as usize]
    }

    /// Index range (in the new numbering) of component `i`.
    #[inline]
    pub fn component_range(&self, i: usize) -> std::ops::Range<usize> {
        self.comp_offset[i]..self.comp_offset[i + 1]
    }

    /// Size of component `i`.
    #[inline]
    pub fn component_size(&self, i: usize) -> usize {
        self.comp_offset[i + 1] - self.comp_offset[i]
    }

    /// Largest component size (the paper's `N_max`).
    pub fn max_component_size(&self) -> usize {
        (0..self.num_components())
            .map(|i| self.component_size(i))
            .max()
            .unwrap_or(0)
    }

    /// Number of boundary nodes of component `i`.
    #[inline]
    pub fn boundary_count(&self, i: usize) -> usize {
        self.comp_boundary[i]
    }

    /// Index range (new numbering) of component `i`'s boundary nodes.
    #[inline]
    pub fn boundary_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.comp_offset[i];
        start..start + self.comp_boundary[i]
    }

    /// Total boundary nodes across all components (the paper's `NB`).
    pub fn total_boundary(&self) -> usize {
        self.comp_boundary.iter().sum()
    }

    /// Relabel `g` into the new numbering.
    pub fn permute_graph(&self, g: &CsrGraph) -> CsrGraph {
        assert_eq!(g.num_vertices(), self.num_vertices());
        let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
        for e in g.edges() {
            b.add_edge(self.new_of(e.src), self.new_of(e.dst), e.weight);
        }
        b.build()
    }

    /// Map a dense vector indexed by old ids into new-id order.
    pub fn permute_values<T: Copy>(&self, old_indexed: &[T]) -> Vec<T> {
        assert_eq!(old_indexed.len(), self.num_vertices());
        self.perm
            .iter()
            .map(|&old| old_indexed[old as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{kway_partition, PartitionConfig};
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};

    fn setup() -> (CsrGraph, Partition, PartitionLayout) {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 1);
        let p = kway_partition(&g, 4, &PartitionConfig::default());
        let l = PartitionLayout::new(&g, &p);
        (g, p, l)
    }

    #[test]
    fn perm_is_a_permutation() {
        let (_, _, l) = setup();
        let mut seen = vec![false; l.num_vertices()];
        for new_id in 0..l.num_vertices() as VertexId {
            let old = l.old_of(new_id);
            assert!(!seen[old as usize]);
            seen[old as usize] = true;
            assert_eq!(l.new_of(old), new_id);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn components_are_contiguous_and_cover() {
        let (_, p, l) = setup();
        let mut total = 0;
        for i in 0..l.num_components() {
            let range = l.component_range(i);
            total += range.len();
            for new_id in range {
                let old = l.old_of(new_id as VertexId);
                assert_eq!(p.part_of(old) as usize, i);
            }
        }
        assert_eq!(total, l.num_vertices());
    }

    #[test]
    fn boundary_nodes_come_first() {
        let (g, p, l) = setup();
        let flags = p.boundary_flags(&g);
        for i in 0..l.num_components() {
            let range = l.component_range(i);
            let nb = l.boundary_count(i);
            for (pos, new_id) in range.enumerate() {
                let old = l.old_of(new_id as VertexId);
                assert_eq!(
                    flags[old as usize],
                    pos < nb,
                    "component {i} position {pos}"
                );
            }
        }
    }

    #[test]
    fn total_boundary_matches_partition() {
        let (g, p, l) = setup();
        assert_eq!(l.total_boundary(), p.num_boundary_nodes(&g));
    }

    #[test]
    fn permuted_graph_preserves_shortest_structure() {
        let (g, _, l) = setup();
        let pg = l.permute_graph(&g);
        assert_eq!(pg.num_vertices(), g.num_vertices());
        assert_eq!(pg.num_edges(), g.num_edges());
        // Every edge maps across.
        for e in g.edges() {
            assert_eq!(
                pg.edge_weight(l.new_of(e.src), l.new_of(e.dst)),
                Some(e.weight)
            );
        }
    }

    #[test]
    fn permute_values_follows_perm() {
        let (_, _, l) = setup();
        let old_vals: Vec<u32> = (0..l.num_vertices() as u32).collect();
        let new_vals = l.permute_values(&old_vals);
        for new_id in 0..l.num_vertices() as VertexId {
            assert_eq!(new_vals[new_id as usize], l.old_of(new_id));
        }
    }

    #[test]
    fn max_component_size() {
        let (_, p, l) = setup();
        assert_eq!(
            l.max_component_size(),
            p.part_sizes().into_iter().max().unwrap()
        );
    }
}
