//! Partition representation and quality metrics.

use apsp_graph::{CsrGraph, VertexId};

/// An assignment of every vertex to one of `k` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Wrap an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if any assignment is `>= k`.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(k >= 1);
        assert!(
            assignment.iter().all(|&p| (p as usize) < k),
            "part id out of range"
        );
        Partition { assignment, k }
    }

    /// The trivial single-part partition.
    pub fn trivial(n: usize) -> Self {
        Partition {
            assignment: vec![0; n],
            k: 1,
        }
    }

    /// Number of parts.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// The raw assignment array.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Vertices of each part, each list sorted ascending.
    pub fn parts(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(v as VertexId);
        }
        out
    }

    /// Sizes of each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Number of directed edges crossing between parts.
    pub fn edge_cut(&self, g: &CsrGraph) -> usize {
        assert_eq!(g.num_vertices(), self.num_vertices());
        let mut cut = 0usize;
        for v in 0..g.num_vertices() as VertexId {
            let pv = self.part_of(v);
            for (u, _) in g.edges_from(v) {
                if self.part_of(u) != pv {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Marks `true` for every boundary node: a vertex incident (in either
    /// direction) to an edge whose endpoints lie in different parts —
    /// exactly the paper's definition ("if vertex u and v belong to
    /// different components, then u and v are both boundary nodes").
    pub fn boundary_flags(&self, g: &CsrGraph) -> Vec<bool> {
        assert_eq!(g.num_vertices(), self.num_vertices());
        let mut boundary = vec![false; g.num_vertices()];
        for v in 0..g.num_vertices() as VertexId {
            let pv = self.part_of(v);
            for (u, _) in g.edges_from(v) {
                if self.part_of(u) != pv {
                    boundary[v as usize] = true;
                    boundary[u as usize] = true;
                }
            }
        }
        boundary
    }

    /// Total number of boundary nodes (the paper's `NB`).
    pub fn num_boundary_nodes(&self, g: &CsrGraph) -> usize {
        self.boundary_flags(g).iter().filter(|&&b| b).count()
    }

    /// Load imbalance: `max_part_size · k / n`. 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            return 1.0;
        }
        let max = self.part_sizes().into_iter().max().unwrap_or(0);
        max as f64 * self.k as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::GraphBuilder;

    fn two_triangles_bridge() -> CsrGraph {
        // Triangle {0,1,2}, triangle {3,4,5}, bridge 2—3.
        let mut b = GraphBuilder::new(6).symmetric(true);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v, 1);
        }
        b.build()
    }

    #[test]
    fn metrics_on_ideal_bisection() {
        let g = two_triangles_bridge();
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 2); // the bridge, both directions
        assert_eq!(p.num_boundary_nodes(&g), 2); // vertices 2 and 3
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
        let flags = p.boundary_flags(&g);
        assert_eq!(flags, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn parts_and_sizes() {
        let p = Partition::new(vec![1, 0, 1, 2], 3);
        assert_eq!(p.part_sizes(), vec![1, 2, 1]);
        assert_eq!(p.parts(), vec![vec![1], vec![0, 2], vec![3]]);
    }

    #[test]
    fn trivial_partition_has_no_boundary() {
        let g = two_triangles_bridge();
        let p = Partition::trivial(6);
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.num_boundary_nodes(&g), 0);
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn imbalance_detects_skew() {
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        assert!((p.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn rejects_out_of_range_parts() {
        Partition::new(vec![0, 2], 2);
    }
}
