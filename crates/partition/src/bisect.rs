//! Multilevel bisection: coarsen, initially partition, uncoarsen + refine.

use crate::coarse::CoarseGraph;
use crate::refine::{refine, Bisection};
use apsp_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options controlling one multilevel bisection.
#[derive(Debug, Clone, Copy)]
pub struct BisectOptions {
    /// Stop coarsening below this many vertices.
    pub coarsest_size: usize,
    /// Allowed imbalance: each side may hold up to
    /// `(its proportional share) · (1 + epsilon)` of the vertex weight.
    pub epsilon: f64,
    /// Number of random seeds tried for the initial partition.
    pub initial_tries: usize,
    /// FM passes per uncoarsening level.
    pub refine_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BisectOptions {
    fn default() -> Self {
        BisectOptions {
            coarsest_size: 64,
            epsilon: 0.05,
            initial_tries: 4,
            refine_passes: 4,
            seed: 0x5EED,
        }
    }
}

/// Bisect `g` so side 0 receives roughly `fraction0` of the total vertex
/// weight. Returns the per-vertex side array.
pub fn multilevel_bisect(g: &CoarseGraph, fraction0: f64, opts: &BisectOptions) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&fraction0));
    let total = g.total_vertex_weight();
    if g.num_vertices() <= 1 || fraction0 == 0.0 || fraction0 == 1.0 {
        let side = if fraction0 == 0.0 { 1 } else { 0 };
        return vec![side; g.num_vertices()];
    }

    // Coarsening phase.
    let mut levels: Vec<CoarseGraph> = vec![g.clone()];
    let mut maps: Vec<Vec<VertexId>> = Vec::new();
    let mut round = 0u64;
    while levels.last().unwrap().num_vertices() > opts.coarsest_size {
        let cur = levels.last().unwrap();
        let (next, map) = cur.coarsen(opts.seed ^ round);
        round += 1;
        // Matching stalled (e.g. star graphs): stop coarsening.
        if next.num_vertices() as f64 > 0.95 * cur.num_vertices() as f64 {
            break;
        }
        levels.push(next);
        maps.push(map);
    }

    // Initial partition on the coarsest level: best of several greedy
    // BFS growths.
    let coarsest = levels.last().unwrap();
    let target0 = (total as f64 * fraction0).round() as u64;
    let max0 = balance_bound(target0, opts.epsilon, total);
    let max1 = balance_bound(total - target0, opts.epsilon, total);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xC0A);
    let mut best: Option<(u64, Vec<u8>)> = None;
    for _ in 0..opts.initial_tries.max(1) {
        let side = grow_region(coarsest, target0, rng.gen());
        let mut bis = Bisection::new(side, coarsest);
        refine_two_sided(coarsest, &mut bis, max0, max1, opts.refine_passes);
        let cut = bis.cut(coarsest);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, bis.side));
        }
    }
    let mut side = best.unwrap().1;

    // Uncoarsening + refinement.
    for level in (0..maps.len()).rev() {
        let fine = &levels[level];
        let map = &maps[level];
        let mut fine_side = vec![0u8; fine.num_vertices()];
        for (v, &cv) in map.iter().enumerate() {
            fine_side[v] = side[cv as usize];
        }
        let mut bis = Bisection::new(fine_side, fine);
        refine_two_sided(fine, &mut bis, max0, max1, opts.refine_passes);
        side = bis.side;
    }
    side
}

/// FM with asymmetric bounds: the pass interface takes one bound, so run
/// with the looser bound and post-check; in practice region growing starts
/// feasible and FM preserves feasibility under `max(max0, max1)`.
fn refine_two_sided(g: &CoarseGraph, bis: &mut Bisection, max0: u64, max1: u64, passes: usize) {
    refine(g, bis, max0.max(max1), passes);
}

fn balance_bound(target: u64, epsilon: f64, total: u64) -> u64 {
    (((target as f64) * (1.0 + epsilon)).ceil() as u64).min(total)
}

/// Greedy BFS region growing: start from a random vertex, absorb the BFS
/// frontier until side 0 holds `target0` weight.
fn grow_region(g: &CoarseGraph, target0: u64, seed: u64) -> Vec<u8> {
    let n = g.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut side = vec![1u8; n];
    let mut w0 = 0u64;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    while w0 < target0 {
        if queue.is_empty() {
            // New BFS seed (graph may be disconnected).
            let unvisited: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| !visited[v as usize])
                .collect();
            let Some(&start) = unvisited.get(
                rng.gen_range(0..unvisited.len().max(1))
                    .min(unvisited.len().saturating_sub(1)),
            ) else {
                break;
            };
            visited[start as usize] = true;
            queue.push_back(start);
        }
        let Some(v) = queue.pop_front() else { break };
        side[v as usize] = 0;
        w0 += g.vertex_weight[v as usize];
        if w0 >= target0 {
            break;
        }
        for (u, _) in g.neighbors(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};

    fn grid_coarse(side: usize) -> CoarseGraph {
        CoarseGraph::from_graph(&grid_2d(
            side,
            side,
            GridOptions::default(),
            WeightRange::default(),
            1,
        ))
    }

    #[test]
    fn bisects_grid_near_optimally() {
        let g = grid_coarse(16); // 256 vertices
        let side = multilevel_bisect(&g, 0.5, &BisectOptions::default());
        let bis = Bisection::new(side, &g);
        // Balance within epsilon-ish.
        assert!(
            bis.weight0.abs_diff(bis.weight1) <= 26,
            "{:?}",
            (bis.weight0, bis.weight1)
        );
        // Optimal cut of a 16×16 grid is 16 edges (multiplicity 2 → 32);
        // multilevel should land within 2× of that.
        assert!(bis.cut(&g) <= 64, "cut = {}", bis.cut(&g));
    }

    #[test]
    fn respects_fraction() {
        let g = grid_coarse(12);
        let side = multilevel_bisect(&g, 0.25, &BisectOptions::default());
        let w0: u64 = side
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == 0)
            .map(|(v, _)| g.vertex_weight[v])
            .sum();
        let frac = w0 as f64 / g.total_vertex_weight() as f64;
        assert!((0.18..0.33).contains(&frac), "fraction = {frac}");
    }

    #[test]
    fn degenerate_fractions() {
        let g = grid_coarse(4);
        assert!(multilevel_bisect(&g, 0.0, &BisectOptions::default())
            .iter()
            .all(|&s| s == 1));
        assert!(multilevel_bisect(&g, 1.0, &BisectOptions::default())
            .iter()
            .all(|&s| s == 0));
    }

    #[test]
    fn single_vertex() {
        let g = CoarseGraph::from_graph(&apsp_graph::CsrGraph::empty(1));
        let side = multilevel_bisect(&g, 0.5, &BisectOptions::default());
        assert_eq!(side.len(), 1);
    }

    #[test]
    fn deterministic_with_seed() {
        let g = grid_coarse(10);
        let opts = BisectOptions::default();
        let a = multilevel_bisect(&g, 0.5, &opts);
        let b = multilevel_bisect(&g, 0.5, &opts);
        assert_eq!(a, b);
    }
}
