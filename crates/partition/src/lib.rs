//! Multilevel k-way graph partitioning — the METIS substitute.
//!
//! The paper's boundary algorithm (its Algorithm 3) partitions the input
//! with METIS k-way and needs: components of roughly equal size, as few
//! *boundary nodes* (endpoints of cut edges) as possible, and a vertex
//! layout where every component is contiguous with its boundary nodes
//! first (the paper's Figure 1a).
//!
//! This crate implements the classic multilevel scheme METIS popularized:
//!
//! 1. **Coarsening** ([`coarse`]): heavy-edge matching collapses the graph
//!    level by level until it is small,
//! 2. **Initial partitioning** ([`bisect`]): greedy BFS region growing on
//!    the coarsest graph (best of several seeds),
//! 3. **Refinement** ([`refine`]): boundary Fiduccia–Mattheyses passes at
//!    every uncoarsening level,
//! 4. **k-way** ([`kway`]): recursive bisection with proportional target
//!    weights.
//!
//! [`layout`] then derives the boundary-first permutation the out-of-core
//! boundary algorithm consumes.

pub mod bisect;
pub mod coarse;
pub mod kway;
pub mod layout;
pub mod partition;
pub mod refine;

pub use kway::{kway_partition, PartitionConfig};
pub use layout::PartitionLayout;
pub use partition::Partition;
