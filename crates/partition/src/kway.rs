//! k-way partitioning via recursive multilevel bisection.

use crate::bisect::{multilevel_bisect, BisectOptions};
use crate::coarse::CoarseGraph;
use crate::partition::Partition;
use apsp_graph::{CsrGraph, VertexId};

/// Configuration for [`kway_partition`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Allowed imbalance (see [`BisectOptions::epsilon`]).
    pub epsilon: f64,
    /// Random seeds tried per bisection.
    pub initial_tries: usize,
    /// FM passes per uncoarsening level.
    pub refine_passes: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            epsilon: 0.05,
            initial_tries: 4,
            refine_passes: 4,
            seed: 0x9A17,
        }
    }
}

/// Partition `g` into `k` parts of near-equal size with small boundary,
/// using recursive multilevel bisection (each bisection splits the part's
/// target count `k` into `⌈k/2⌉ : ⌊k/2⌋` proportionally).
///
/// ```
/// use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};
/// use apsp_partition::{kway_partition, PartitionConfig};
///
/// let g = grid_2d(16, 16, GridOptions::default(), WeightRange::default(), 1);
/// let p = kway_partition(&g, 4, &PartitionConfig::default());
/// assert_eq!(p.k(), 4);
/// assert!(p.imbalance() < 1.3);
/// // A planar grid has an O(√n) separator; the boundary stays small.
/// assert!(p.num_boundary_nodes(&g) < 100);
/// ```
pub fn kway_partition(g: &CsrGraph, k: usize, cfg: &PartitionConfig) -> Partition {
    assert!(k >= 1, "k must be positive");
    let n = g.num_vertices();
    if k == 1 || n == 0 {
        return Partition::trivial(n);
    }
    let coarse = CoarseGraph::from_graph(g);
    let vertices: Vec<VertexId> = (0..n as VertexId).collect();
    let mut assignment = vec![0u32; n];
    split(&coarse, &vertices, k, 0, cfg, cfg.seed, &mut assignment);
    Partition::new(assignment, k)
}

/// Recursively split the sub-coarse-graph induced by `vertices` (ids in
/// the *original* graph) into `k` parts starting at id `first_part`.
fn split(
    root: &CoarseGraph,
    vertices: &[VertexId],
    k: usize,
    first_part: u32,
    cfg: &PartitionConfig,
    seed: u64,
    assignment: &mut [u32],
) {
    if k == 1 {
        for &v in vertices {
            assignment[v as usize] = first_part;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let fraction0 = k0 as f64 / k as f64;
    let sub = induce(root, vertices);
    let opts = BisectOptions {
        coarsest_size: 64,
        epsilon: cfg.epsilon,
        initial_tries: cfg.initial_tries,
        refine_passes: cfg.refine_passes,
        seed,
    };
    let side = multilevel_bisect(&sub, fraction0, &opts);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // A degenerate empty side (possible on disconnected or tiny inputs)
    // must not collapse part ids: steal vertices to keep every part
    // non-empty when possible.
    rebalance_if_empty(&mut left, &mut right);
    split(
        root,
        &left,
        k0,
        first_part,
        cfg,
        seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1),
        assignment,
    );
    split(
        root,
        &right,
        k1,
        first_part + k0 as u32,
        cfg,
        seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(2),
        assignment,
    );
}

fn rebalance_if_empty(left: &mut Vec<VertexId>, right: &mut Vec<VertexId>) {
    if left.is_empty() && right.len() > 1 {
        let moved = right.split_off(right.len() / 2);
        *left = moved;
    } else if right.is_empty() && left.len() > 1 {
        let moved = left.split_off(left.len() / 2);
        *right = moved;
    }
}

/// Induce the coarse subgraph on `vertices` (sorted original ids),
/// relabelling to `0..len`.
fn induce(root: &CoarseGraph, vertices: &[VertexId]) -> CoarseGraph {
    let mut remap = vec![VertexId::MAX; root.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        remap[v as usize] = i as VertexId;
    }
    let mut row_ptr = Vec::with_capacity(vertices.len() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut edge_weight = Vec::new();
    let mut vertex_weight = Vec::with_capacity(vertices.len());
    for &v in vertices {
        for (u, w) in root.neighbors(v) {
            let nu = remap[u as usize];
            if nu != VertexId::MAX {
                col_idx.push(nu);
                edge_weight.push(w);
            }
        }
        row_ptr.push(col_idx.len());
        vertex_weight.push(root.vertex_weight[v as usize]);
    }
    CoarseGraph {
        row_ptr,
        col_idx,
        edge_weight,
        vertex_weight,
    }
}

/// The paper sets the number of components to `√n / 4` for the boundary
/// algorithm's best performance (Section V-F); `√n` minimizes the cost
/// model's operation count (Section IV-B). This helper returns the paper's
/// default, clamped to at least 2.
pub fn default_num_components(n: usize) -> usize {
    (((n as f64).sqrt() / 4.0).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{
        grid_2d, random_geometric, rmat, GridOptions, RmatParams, WeightRange,
    };

    #[test]
    fn partitions_grid_with_small_boundary() {
        let g = grid_2d(24, 24, GridOptions::default(), WeightRange::default(), 1);
        let k = 8;
        let p = kway_partition(&g, k, &PartitionConfig::default());
        assert_eq!(p.k(), k);
        assert!(p.imbalance() < 1.35, "imbalance = {}", p.imbalance());
        let nb = p.num_boundary_nodes(&g);
        // Planar ideal ≈ √(k·n) = √(8·576) ≈ 68; allow slack ×3.
        assert!(nb < 204, "boundary nodes = {nb}");
        // Every part non-empty.
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn geometric_graphs_have_small_separators_rmat_does_not() {
        let n = 1024;
        let geo = random_geometric(n, 0.05, WeightRange::default(), 3);
        let scale_free = rmat(
            n,
            8 * n,
            RmatParams::scale_free(),
            WeightRange::default(),
            3,
        );
        let k = 8;
        let cfg = PartitionConfig::default();
        let nb_geo = kway_partition(&geo, k, &cfg).num_boundary_nodes(&geo);
        let nb_rmat = kway_partition(&scale_free, k, &cfg).num_boundary_nodes(&scale_free);
        assert!(
            nb_geo * 2 < nb_rmat,
            "geometric {nb_geo} should be far below rmat {nb_rmat}"
        );
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = grid_2d(5, 5, GridOptions::default(), WeightRange::default(), 1);
        let p = kway_partition(&g, 1, &PartitionConfig::default());
        assert_eq!(p.k(), 1);
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn odd_k_keeps_parts_nonempty() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 2);
        for k in [3, 5, 7] {
            let p = kway_partition(&g, k, &PartitionConfig::default());
            assert!(p.part_sizes().iter().all(|&s| s > 0), "k = {k}");
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint grids glued into one vertex set.
        let a = grid_2d(6, 6, GridOptions::default(), WeightRange::default(), 1);
        let mut b = apsp_graph::GraphBuilder::new(72);
        for e in a.edges() {
            b.add_edge(e.src, e.dst, e.weight);
            b.add_edge(e.src + 36, e.dst + 36, e.weight);
        }
        let g = b.build();
        let p = kway_partition(&g, 4, &PartitionConfig::default());
        assert!(p.part_sizes().iter().all(|&s| s > 0));
        assert!(p.imbalance() < 1.6);
    }

    #[test]
    fn deterministic() {
        let g = grid_2d(12, 12, GridOptions::default(), WeightRange::default(), 4);
        let cfg = PartitionConfig::default();
        assert_eq!(
            kway_partition(&g, 6, &cfg).assignment(),
            kway_partition(&g, 6, &cfg).assignment()
        );
    }

    #[test]
    fn default_component_count_follows_paper() {
        // √10000 / 4 = 25.
        assert_eq!(default_num_components(10_000), 25);
        assert_eq!(default_num_components(4), 2);
    }
}
