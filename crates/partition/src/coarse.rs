//! Coarsening via heavy-edge matching.
//!
//! A [`CoarseGraph`] carries vertex weights (number of original vertices
//! merged into each coarse vertex) and integer edge weights (number of
//! original edges collapsed into each coarse edge), exactly the data the
//! refinement pass needs to keep cuts and balance meaningful across levels.

use apsp_graph::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Weighted graph used during multilevel partitioning.
#[derive(Debug, Clone)]
pub struct CoarseGraph {
    /// CSR offsets, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Neighbour ids, undirected (each edge stored in both rows).
    pub col_idx: Vec<VertexId>,
    /// Collapsed multiplicity of each edge.
    pub edge_weight: Vec<u64>,
    /// Number of original vertices merged into each coarse vertex.
    pub vertex_weight: Vec<u64>,
}

impl CoarseGraph {
    /// Build the level-0 coarse graph from an input graph: symmetrize the
    /// structure (the partitioner works on the undirected skeleton) and
    /// give every vertex weight 1 and every undirected edge weight equal
    /// to its multiplicity (1 or 2 depending on whether both directions
    /// exist).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        // Union of g and gᵀ with unit multiplicities summed.
        let t = g.transpose();
        let mut deg = vec![0usize; n + 1];
        for v in 0..n as VertexId {
            // Merge two sorted lists counting unique neighbours ≠ v.
            deg[v as usize + 1] = merged_unique_count(g, &t, v);
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let m = deg[n];
        let mut col_idx = vec![0 as VertexId; m];
        let mut edge_weight = vec![0u64; m];
        let mut cursor = deg.clone();
        for v in 0..n as VertexId {
            merge_rows(g, &t, v, &mut |u, w| {
                let slot = cursor[v as usize];
                cursor[v as usize] += 1;
                col_idx[slot] = u;
                edge_weight[slot] = w;
            });
        }
        CoarseGraph {
            row_ptr: deg,
            col_idx,
            edge_weight,
            vertex_weight: vec![1; n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_weight.len()
    }

    /// Total vertex weight (number of original vertices).
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weight.iter().sum()
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u64)> + '_ {
        let lo = self.row_ptr[v as usize];
        let hi = self.row_ptr[v as usize + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.edge_weight[lo..hi].iter().copied())
    }

    /// One level of heavy-edge matching. Returns the coarse graph and the
    /// mapping `fine vertex → coarse vertex`.
    pub fn coarsen(&self, seed: u64) -> (CoarseGraph, Vec<VertexId>) {
        let n = self.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.shuffle(&mut rng);
        let mut mate = vec![VertexId::MAX; n];
        for &v in &order {
            if mate[v as usize] != VertexId::MAX {
                continue;
            }
            // Heavy-edge rule: match with the unmatched neighbour behind
            // the heaviest edge.
            let mut best: Option<(VertexId, u64)> = None;
            for (u, w) in self.neighbors(v) {
                if u != v && mate[u as usize] == VertexId::MAX && best.is_none_or(|(_, bw)| w > bw)
                {
                    best = Some((u, w));
                }
            }
            match best {
                Some((u, _)) => {
                    mate[v as usize] = u;
                    mate[u as usize] = v;
                }
                None => mate[v as usize] = v, // stays single
            }
        }
        // Assign coarse ids.
        let mut map = vec![VertexId::MAX; n];
        let mut next = 0 as VertexId;
        for v in 0..n as VertexId {
            if map[v as usize] != VertexId::MAX {
                continue;
            }
            map[v as usize] = next;
            let m = mate[v as usize];
            if m != v && m != VertexId::MAX {
                map[m as usize] = next;
            }
            next += 1;
        }
        let cn = next as usize;
        // Build the coarse adjacency by accumulating into per-row hash-free
        // scatter arrays (two passes).
        let mut vertex_weight = vec![0u64; cn];
        for v in 0..n {
            vertex_weight[map[v] as usize] += self.vertex_weight[v];
        }
        // Gather edges: scatter-accumulate with a dense marker array.
        let mut row_ptr = vec![0usize; cn + 1];
        let mut entries: Vec<(VertexId, VertexId, u64)> = Vec::with_capacity(self.col_idx.len());
        for v in 0..n as VertexId {
            let cv = map[v as usize];
            for (u, w) in self.neighbors(v) {
                let cu = map[u as usize];
                if cu != cv {
                    entries.push((cv, cu, w));
                }
            }
        }
        for &(cv, _, _) in &entries {
            row_ptr[cv as usize + 1] += 1;
        }
        for i in 0..cn {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_tmp = vec![0 as VertexId; entries.len()];
        let mut w_tmp = vec![0u64; entries.len()];
        let mut cursor = row_ptr.clone();
        for &(cv, cu, w) in &entries {
            let slot = cursor[cv as usize];
            cursor[cv as usize] += 1;
            col_tmp[slot] = cu;
            w_tmp[slot] = w;
        }
        // Deduplicate within each row (sort + fold, summing weights).
        let mut out_row = vec![0usize; cn + 1];
        let mut out_col = Vec::with_capacity(entries.len());
        let mut out_w = Vec::with_capacity(entries.len());
        let mut scratch: Vec<(VertexId, u64)> = Vec::new();
        for cv in 0..cn {
            scratch.clear();
            scratch.extend(
                col_tmp[row_ptr[cv]..row_ptr[cv + 1]]
                    .iter()
                    .copied()
                    .zip(w_tmp[row_ptr[cv]..row_ptr[cv + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(u, _)| u);
            let mut last: Option<VertexId> = None;
            for &(u, w) in scratch.iter() {
                if last == Some(u) {
                    let slot = out_w.len() - 1;
                    out_w[slot] += w;
                } else {
                    out_col.push(u);
                    out_w.push(w);
                    last = Some(u);
                }
            }
            out_row[cv + 1] = out_col.len();
        }
        (
            CoarseGraph {
                row_ptr: out_row,
                col_idx: out_col,
                edge_weight: out_w,
                vertex_weight,
            },
            map,
        )
    }
}

/// Count unique neighbours of `v` in the union of `g`'s and `t`'s rows,
/// excluding `v` itself.
fn merged_unique_count(g: &CsrGraph, t: &CsrGraph, v: VertexId) -> usize {
    let mut count = 0usize;
    merge_rows(g, t, v, &mut |_, _| count += 1);
    count
}

/// Merge the sorted neighbour rows of `v` in `g` and `t`, calling `f` once
/// per unique neighbour (≠ v) with the summed multiplicity (1 if the edge
/// exists in one direction, 2 if both).
fn merge_rows(g: &CsrGraph, t: &CsrGraph, v: VertexId, f: &mut impl FnMut(VertexId, u64)) {
    let (a, _) = g.neighbors(v);
    let (b, _) = t.neighbors(v);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let (u, w) = if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            let u = a[i];
            i += 1;
            (u, 1u64)
        } else if i >= a.len() || b[j] < a[i] {
            let u = b[j];
            j += 1;
            (u, 1u64)
        } else {
            let u = a[i];
            i += 1;
            j += 1;
            (u, 2u64)
        };
        if u != v {
            f(u, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};
    use apsp_graph::GraphBuilder;

    #[test]
    fn from_graph_symmetrizes() {
        // Directed edge 0 -> 1 only; coarse graph must see it both ways.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5);
        let cg = CoarseGraph::from_graph(&b.build());
        assert_eq!(cg.neighbors(0).collect::<Vec<_>>(), vec![(1, 1)]);
        assert_eq!(cg.neighbors(1).collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn bidirectional_edges_get_weight_two() {
        let mut b = GraphBuilder::new(2).symmetric(true);
        b.add_edge(0, 1, 5);
        let cg = CoarseGraph::from_graph(&b.build());
        assert_eq!(cg.neighbors(0).collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    fn coarsening_conserves_vertex_weight() {
        let g = grid_2d(12, 12, GridOptions::default(), WeightRange::default(), 1);
        let cg = CoarseGraph::from_graph(&g);
        let total = cg.total_vertex_weight();
        let (c1, map) = cg.coarsen(7);
        assert_eq!(c1.total_vertex_weight(), total);
        assert!(c1.num_vertices() < cg.num_vertices());
        assert!(c1.num_vertices() >= cg.num_vertices() / 2);
        assert_eq!(map.len(), cg.num_vertices());
        assert!(map.iter().all(|&c| (c as usize) < c1.num_vertices()));
    }

    #[test]
    fn coarsening_halves_on_perfect_matching() {
        // A cycle has a near-perfect matching.
        let n = 64;
        let mut b = GraphBuilder::new(n).symmetric(true);
        for v in 0..n as u32 {
            b.add_edge(v, (v + 1) % n as u32, 1);
        }
        let cg = CoarseGraph::from_graph(&b.build());
        let (c1, _) = cg.coarsen(3);
        assert!(
            c1.num_vertices() <= (n * 3).div_ceil(4),
            "{}",
            c1.num_vertices()
        );
    }

    #[test]
    fn coarse_edges_have_no_self_loops() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::default(), 2);
        let cg = CoarseGraph::from_graph(&g);
        let (c1, _) = cg.coarsen(11);
        for v in 0..c1.num_vertices() as VertexId {
            assert!(c1.neighbors(v).all(|(u, _)| u != v));
        }
    }

    #[test]
    fn repeated_coarsening_terminates() {
        let g = grid_2d(16, 16, GridOptions::default(), WeightRange::default(), 5);
        let mut cg = CoarseGraph::from_graph(&g);
        for round in 0..32 {
            let before = cg.num_vertices();
            let (next, _) = cg.coarsen(round);
            if next.num_vertices() == before {
                break;
            }
            cg = next;
            if cg.num_vertices() <= 8 {
                break;
            }
        }
        assert!(cg.num_vertices() <= 16);
    }
}
