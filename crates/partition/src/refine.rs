//! Boundary Fiduccia–Mattheyses refinement of a bisection.

use crate::coarse::CoarseGraph;
use apsp_graph::VertexId;

/// A two-way split of a [`CoarseGraph`]: `side[v]` is 0 or 1.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// Side of each vertex.
    pub side: Vec<u8>,
    /// Total vertex weight on side 0.
    pub weight0: u64,
    /// Total vertex weight on side 1.
    pub weight1: u64,
}

impl Bisection {
    /// Build from a side array.
    pub fn new(side: Vec<u8>, g: &CoarseGraph) -> Self {
        assert_eq!(side.len(), g.num_vertices());
        let mut weight0 = 0;
        let mut weight1 = 0;
        for (v, &s) in side.iter().enumerate() {
            if s == 0 {
                weight0 += g.vertex_weight[v];
            } else {
                weight1 += g.vertex_weight[v];
            }
        }
        Bisection {
            side,
            weight0,
            weight1,
        }
    }

    /// Cut weight of the bisection (each undirected edge counted once).
    pub fn cut(&self, g: &CoarseGraph) -> u64 {
        let mut cut = 0u64;
        for v in 0..g.num_vertices() as VertexId {
            for (u, w) in g.neighbors(v) {
                if u > v && self.side[u as usize] != self.side[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }
}

/// FM gain of moving `v` to the other side: external − internal edge weight.
fn gain(g: &CoarseGraph, side: &[u8], v: VertexId) -> i64 {
    let sv = side[v as usize];
    let mut gain = 0i64;
    for (u, w) in g.neighbors(v) {
        if side[u as usize] == sv {
            gain -= w as i64;
        } else {
            gain += w as i64;
        }
    }
    gain
}

/// One FM pass with hill climbing: tentatively move the best-gain boundary
/// vertex (subject to the balance bound), lock it, repeat; then roll back
/// to the best prefix. Returns the cut improvement (0 if none).
///
/// `max_side_weight` is the balance constraint: neither side may exceed it.
pub fn fm_pass(g: &CoarseGraph, bis: &mut Bisection, max_side_weight: u64) -> u64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut side = bis.side.clone();
    let (mut w0, mut w1) = (bis.weight0, bis.weight1);
    let mut locked = vec![false; n];
    let mut moves: Vec<VertexId> = Vec::new();
    let mut cum_gain: i64 = 0;
    let mut best_gain: i64 = 0;
    let mut best_prefix = 0usize;

    // Candidate worklist: only boundary vertices can improve the cut, so
    // each selection scans O(|boundary|) instead of O(n). Moves add the
    // moved vertex's neighbourhood back into the list.
    let mut candidates: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| {
            g.neighbors(v)
                .any(|(u, _)| side[u as usize] != side[v as usize])
        })
        .collect();
    let mut queued = vec![false; n];
    for &v in &candidates {
        queued[v as usize] = true;
    }

    // Cap work per pass: FM converges in few moves; bounding the number of
    // tentative moves keeps a pass near-linear in the boundary size.
    let move_cap = n.min(candidates.len().max(64) * 4);
    for _ in 0..move_cap {
        // Select the best unlocked candidate whose move keeps balance.
        let mut best: Option<(VertexId, i64)> = None;
        candidates.retain(|&v| !locked[v as usize]);
        for &v in &candidates {
            let vw = g.vertex_weight[v as usize];
            let feasible = if side[v as usize] == 0 {
                w1 + vw <= max_side_weight
            } else {
                w0 + vw <= max_side_weight
            };
            if !feasible {
                continue;
            }
            // Stale entries (no longer on the boundary) can only move for
            // positive gain.
            let gv = gain(g, &side, v);
            let on_boundary = g
                .neighbors(v)
                .any(|(u, _)| side[u as usize] != side[v as usize]);
            if !on_boundary && gv <= 0 {
                continue;
            }
            if best.is_none_or(|(_, bg)| gv > bg) {
                best = Some((v, gv));
            }
        }
        let Some((v, gv)) = best else { break };
        // Apply the tentative move.
        let vw = g.vertex_weight[v as usize];
        if side[v as usize] == 0 {
            side[v as usize] = 1;
            w0 -= vw;
            w1 += vw;
        } else {
            side[v as usize] = 0;
            w1 -= vw;
            w0 += vw;
        }
        locked[v as usize] = true;
        moves.push(v);
        for (u, _) in g.neighbors(v) {
            if !locked[u as usize] && !queued[u as usize] {
                queued[u as usize] = true;
                candidates.push(u);
            }
        }
        cum_gain += gv;
        if cum_gain > best_gain {
            best_gain = cum_gain;
            best_prefix = moves.len();
        }
        // Early stop: long negative streaks rarely recover.
        if cum_gain < best_gain - 64 {
            break;
        }
    }
    if best_gain <= 0 {
        return 0;
    }
    // Commit the best prefix.
    for &v in &moves[..best_prefix] {
        let vw = g.vertex_weight[v as usize];
        if bis.side[v as usize] == 0 {
            bis.side[v as usize] = 1;
            bis.weight0 -= vw;
            bis.weight1 += vw;
        } else {
            bis.side[v as usize] = 0;
            bis.weight1 -= vw;
            bis.weight0 += vw;
        }
    }
    best_gain as u64
}

/// Run FM passes until no pass improves the cut (bounded by `max_passes`).
pub fn refine(g: &CoarseGraph, bis: &mut Bisection, max_side_weight: u64, max_passes: usize) {
    for _ in 0..max_passes {
        if fm_pass(g, bis, max_side_weight) == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{grid_2d, GridOptions, WeightRange};
    use apsp_graph::GraphBuilder;

    fn coarse_of(g: &apsp_graph::CsrGraph) -> CoarseGraph {
        CoarseGraph::from_graph(g)
    }

    #[test]
    fn fm_fixes_an_obviously_bad_split() {
        // Two cliques of 4 joined by one edge; start with a split that
        // cuts a clique in half.
        let mut b = GraphBuilder::new(8).symmetric(true);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j, 1);
                b.add_edge(i + 4, j + 4, 1);
            }
        }
        b.add_edge(3, 4, 1);
        let g = coarse_of(&b.build());
        // Bad: {0,1,4,5} vs {2,3,6,7}.
        let side = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let mut bis = Bisection::new(side, &g);
        let before = bis.cut(&g);
        refine(&g, &mut bis, 5, 10);
        let after = bis.cut(&g);
        assert!(after < before, "cut {before} -> {after}");
        // Ideal cut is the single bridge (weight 2 with both directions).
        assert!(after <= 2, "cut = {after}");
    }

    #[test]
    fn fm_respects_balance_bound() {
        let g = coarse_of(&grid_2d(
            8,
            8,
            GridOptions::default(),
            WeightRange::default(),
            1,
        ));
        let side: Vec<u8> = (0..64).map(|v| if v % 2 == 0 { 0 } else { 1 }).collect();
        let mut bis = Bisection::new(side, &g);
        let bound = 40;
        refine(&g, &mut bis, bound, 20);
        assert!(bis.weight0 <= bound && bis.weight1 <= bound);
        assert_eq!(bis.weight0 + bis.weight1, 64);
    }

    #[test]
    fn fm_never_worsens_cut() {
        let g = coarse_of(&grid_2d(
            10,
            10,
            GridOptions::default(),
            WeightRange::default(),
            3,
        ));
        // Left-half / right-half split is already good.
        let side: Vec<u8> = (0..100).map(|v| if v % 10 < 5 { 0 } else { 1 }).collect();
        let mut bis = Bisection::new(side, &g);
        let before = bis.cut(&g);
        refine(&g, &mut bis, 55, 10);
        assert!(bis.cut(&g) <= before);
    }

    #[test]
    fn bisection_weights_track_moves() {
        let mut b = GraphBuilder::new(3).symmetric(true);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = coarse_of(&b.build());
        let bis = Bisection::new(vec![0, 1, 1], &g);
        assert_eq!(bis.weight0, 1);
        assert_eq!(bis.weight1, 2);
        assert_eq!(bis.cut(&g), 2); // edge 0-1 has multiplicity 2
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = coarse_of(&apsp_graph::CsrGraph::empty(0));
        let mut bis = Bisection::new(vec![], &g);
        assert_eq!(fm_pass(&g, &mut bis, 10), 0);
    }
}
