//! Kernel launch descriptions and the duration model.

use crate::profile::DeviceProfile;

/// Grid shape of a kernel launch. Only the block count matters for the
/// occupancy model; threads-per-block is carried for reporting fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        assert!(blocks >= 1 && threads_per_block >= 1);
        LaunchConfig {
            blocks,
            threads_per_block,
        }
    }

    /// A grid large enough to saturate any stock profile — for kernels
    /// whose parallelism is not the bottleneck being studied.
    pub fn saturating() -> Self {
        LaunchConfig::new(4096, 256)
    }
}

/// Work content of one kernel, from which the model derives duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Scalar operations performed (one min-plus update = one op).
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
    /// Efficiency divisor ≥ 1 for irregular control flow / uncoalesced
    /// access (1 = dense regular kernel, larger = frontier-style kernels).
    pub irregularity: f64,
    /// Latency floor in seconds: the kernel cannot finish faster than
    /// this regardless of throughput (e.g. frontier loops whose
    /// iterations serialize on memory latency — the effect that makes
    /// high-diameter graphs slow for GPU SSSP no matter how small their
    /// frontiers are).
    pub min_seconds: f64,
}

impl KernelCost {
    /// A regular (dense) kernel.
    pub fn regular(flops: f64, bytes: f64) -> Self {
        KernelCost {
            flops,
            bytes,
            irregularity: 1.0,
            min_seconds: 0.0,
        }
    }

    /// An irregular kernel with the given efficiency divisor.
    pub fn irregular(flops: f64, bytes: f64, irregularity: f64) -> Self {
        assert!(irregularity >= 1.0);
        KernelCost {
            flops,
            bytes,
            irregularity,
            min_seconds: 0.0,
        }
    }

    /// Attach a latency floor (seconds).
    pub fn with_min_seconds(mut self, floor: f64) -> Self {
        assert!(floor >= 0.0);
        self.min_seconds = floor;
        self
    }

    /// Duration of this kernel on `profile` under `launch`:
    ///
    /// ```text
    /// overhead + max(flops / compute, bytes / bandwidth) · irregularity / occupancy
    /// ```
    ///
    /// The roofline `max` picks the binding resource; occupancy < 1
    /// penalizes grids too small to fill the device (the situation the
    /// paper's dynamic-parallelism optimization repairs).
    pub fn duration(&self, profile: &DeviceProfile, launch: LaunchConfig) -> f64 {
        assert!(self.flops >= 0.0 && self.bytes >= 0.0);
        let occ = profile.occupancy(launch.blocks).max(1e-6);
        let compute = self.flops / profile.compute_ops_per_sec;
        let memory = self.bytes / profile.mem_bandwidth;
        let throughput_time = compute.max(memory) * self.irregularity / occ;
        profile.kernel_launch_overhead + throughput_time.max(self.min_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DeviceProfile {
        DeviceProfile::v100()
    }

    #[test]
    fn compute_bound_kernel() {
        let cost = KernelCost::regular(1.4e12, 1.0); // exactly one second of flops
        let d = cost.duration(&p(), LaunchConfig::saturating());
        assert!((d - 1.0).abs() < 1e-3, "d = {d}");
    }

    #[test]
    fn memory_bound_kernel() {
        let cost = KernelCost::regular(1.0, 900e9); // one second of bandwidth
        let d = cost.duration(&p(), LaunchConfig::saturating());
        assert!((d - 1.0).abs() < 1e-3, "d = {d}");
    }

    #[test]
    fn roofline_takes_max_not_sum() {
        let cost = KernelCost::regular(1.4e12, 900e9);
        let d = cost.duration(&p(), LaunchConfig::saturating());
        assert!((d - 1.0).abs() < 1e-2, "d = {d}");
    }

    #[test]
    fn irregularity_multiplies() {
        let reg = KernelCost::regular(1.4e12, 0.0);
        let irr = KernelCost::irregular(1.4e12, 0.0, 4.0);
        let lc = LaunchConfig::saturating();
        let ratio = irr.duration(&p(), lc) / reg.duration(&p(), lc);
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn small_grids_run_slower() {
        let cost = KernelCost::regular(1.4e12, 0.0);
        let full = cost.duration(&p(), LaunchConfig::saturating());
        let quarter_blocks = p().saturating_blocks / 4;
        let small = cost.duration(&p(), LaunchConfig::new(quarter_blocks, 256));
        let ratio = small / full;
        assert!((ratio - 4.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn overhead_dominates_empty_kernels() {
        let cost = KernelCost::regular(0.0, 0.0);
        let d = cost.duration(&p(), LaunchConfig::new(1, 32));
        assert_eq!(d, p().kernel_launch_overhead);
    }

    #[test]
    #[should_panic]
    fn rejects_subunit_irregularity() {
        KernelCost::irregular(1.0, 1.0, 0.5);
    }

    #[test]
    fn latency_floor_binds_small_kernels() {
        let cost = KernelCost::regular(1.0, 0.0).with_min_seconds(0.5);
        let d = cost.duration(&p(), LaunchConfig::saturating());
        assert!((d - (0.5 + p().kernel_launch_overhead)).abs() < 1e-12);
        // A floor below the throughput time changes nothing.
        let big = KernelCost::regular(1.4e12, 0.0).with_min_seconds(0.5);
        let d2 = big.duration(&p(), LaunchConfig::saturating());
        assert!((d2 - 1.0).abs() < 1e-3, "d2 = {d2}");
    }
}
