//! Simulated clock: streams, engines, events and makespan.
//!
//! The model mirrors how CUDA devices actually schedule the operations the
//! suite issues: one kernel engine, one DMA engine per copy direction.
//! Each operation belongs to a stream; it starts when both its stream and
//! its engine are free and occupies both until it completes. Overlap
//! between compute and copies (and between opposite copy directions)
//! arises exactly when operations sit on different streams — which is how
//! the paper's double-buffering optimization gains its 12.7–29.1%.

/// A point in simulated time, in seconds from device creation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds as `f64`.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl std::ops::Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl std::ops::Sub for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

/// Hardware engines that serialize work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Kernel execution engine (one grid at a time in this model).
    Compute,
    /// Host→device DMA engine.
    CopyH2D,
    /// Device→host DMA engine.
    CopyD2H,
}

impl Engine {
    const COUNT: usize = 3;

    #[inline]
    fn index(self) -> usize {
        match self {
            Engine::Compute => 0,
            Engine::CopyH2D => 1,
            Engine::CopyD2H => 2,
        }
    }
}

/// Identifier of a stream created on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// A recorded event: a timestamp another stream can wait on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event(pub(crate) SimTime);

impl Event {
    /// When the event fires.
    pub fn time(&self) -> SimTime {
        self.0
    }
}

/// The device clock: per-engine and per-stream availability times.
#[derive(Debug, Clone)]
pub struct Timeline {
    engine_free: [SimTime; Engine::COUNT],
    stream_free: Vec<SimTime>,
    engine_busy_total: [f64; Engine::COUNT],
}

impl Timeline {
    /// New timeline with one (default) stream.
    pub fn new() -> Self {
        Timeline {
            engine_free: [SimTime::ZERO; Engine::COUNT],
            stream_free: vec![SimTime::ZERO],
            engine_busy_total: [0.0; Engine::COUNT],
        }
    }

    /// The default stream (stream 0).
    pub fn default_stream(&self) -> StreamId {
        StreamId(0)
    }

    /// Create a new stream, available immediately.
    pub fn create_stream(&mut self) -> StreamId {
        self.stream_free.push(SimTime::ZERO);
        StreamId(self.stream_free.len() - 1)
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.stream_free.len()
    }

    /// Schedule an operation of `duration` seconds on `stream` using
    /// `engine`. Returns the operation's `(start, end)` times.
    pub fn schedule(
        &mut self,
        stream: StreamId,
        engine: Engine,
        duration: f64,
    ) -> (SimTime, SimTime) {
        assert!(duration >= 0.0, "durations cannot be negative");
        assert!(stream.0 < self.stream_free.len(), "unknown stream");
        let e = engine.index();
        let start = self.engine_free[e].max(self.stream_free[stream.0]);
        let end = start + duration;
        self.engine_free[e] = end;
        self.stream_free[stream.0] = end;
        self.engine_busy_total[e] += duration;
        (start, end)
    }

    /// Record an event on a stream: fires when all work so far on that
    /// stream has completed.
    pub fn record_event(&self, stream: StreamId) -> Event {
        Event(self.stream_free[stream.0])
    }

    /// Make `stream` wait for `event` before running anything further.
    pub fn wait_event(&mut self, stream: StreamId, event: Event) {
        self.stream_free[stream.0] = self.stream_free[stream.0].max(event.0);
    }

    /// Block until everything completes; returns the makespan.
    pub fn synchronize(&mut self) -> SimTime {
        let mut t = SimTime::ZERO;
        for &e in &self.engine_free {
            t = t.max(e);
        }
        for &s in &self.stream_free {
            t = t.max(s);
        }
        // After a device-wide sync every engine/stream resumes from `t`.
        for e in &mut self.engine_free {
            *e = t;
        }
        for s in &mut self.stream_free {
            *s = t;
        }
        t
    }

    /// Current makespan without synchronizing.
    pub fn now(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        for &e in &self.engine_free {
            t = t.max(e);
        }
        for &s in &self.stream_free {
            t = t.max(s);
        }
        t
    }

    /// Total busy seconds accumulated on an engine (for utilization
    /// reports).
    pub fn engine_busy(&self, engine: Engine) -> f64 {
        self.engine_busy_total[engine.index()]
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_serializes_across_engines() {
        let mut tl = Timeline::new();
        let s = tl.default_stream();
        let (a0, a1) = tl.schedule(s, Engine::Compute, 1.0);
        let (b0, b1) = tl.schedule(s, Engine::CopyD2H, 2.0);
        assert_eq!(a0.seconds(), 0.0);
        assert_eq!(a1.seconds(), 1.0);
        assert_eq!(b0.seconds(), 1.0); // waits for the kernel despite a free DMA engine
        assert_eq!(b1.seconds(), 3.0);
        assert_eq!(tl.now().seconds(), 3.0);
    }

    #[test]
    fn different_streams_overlap_on_different_engines() {
        let mut tl = Timeline::new();
        let s0 = tl.default_stream();
        let s1 = tl.create_stream();
        tl.schedule(s0, Engine::Compute, 2.0);
        let (c0, c1) = tl.schedule(s1, Engine::CopyD2H, 2.0);
        assert_eq!(c0.seconds(), 0.0); // fully overlapped
        assert_eq!(c1.seconds(), 2.0);
        assert_eq!(tl.synchronize().seconds(), 2.0);
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let mut tl = Timeline::new();
        let s0 = tl.default_stream();
        let s1 = tl.create_stream();
        tl.schedule(s0, Engine::Compute, 2.0);
        let (c0, _) = tl.schedule(s1, Engine::Compute, 1.0);
        assert_eq!(c0.seconds(), 2.0); // only one kernel engine
    }

    #[test]
    fn events_synchronize_streams() {
        let mut tl = Timeline::new();
        let s0 = tl.default_stream();
        let s1 = tl.create_stream();
        tl.schedule(s0, Engine::Compute, 3.0);
        let ev = tl.record_event(s0);
        tl.wait_event(s1, ev);
        let (c0, _) = tl.schedule(s1, Engine::CopyD2H, 1.0);
        assert_eq!(c0.seconds(), 3.0);
    }

    #[test]
    fn double_buffering_overlaps_as_expected() {
        // Classic pipeline: N chunks, compute 1 s + copy-out 1 s each,
        // alternating between two streams ⇒ makespan ≈ N + 1 instead of 2N.
        let mut tl = Timeline::new();
        let s = [tl.default_stream(), tl.create_stream()];
        let n = 8;
        for i in 0..n {
            let stream = s[i % 2];
            tl.schedule(stream, Engine::Compute, 1.0);
            tl.schedule(stream, Engine::CopyD2H, 1.0);
        }
        let makespan = tl.synchronize().seconds();
        assert!(
            (makespan - (n as f64 + 1.0)).abs() < 1e-9,
            "makespan = {makespan}"
        );
    }

    #[test]
    fn busy_totals_accumulate() {
        let mut tl = Timeline::new();
        let s = tl.default_stream();
        tl.schedule(s, Engine::Compute, 1.5);
        tl.schedule(s, Engine::Compute, 0.5);
        tl.schedule(s, Engine::CopyH2D, 0.25);
        assert_eq!(tl.engine_busy(Engine::Compute), 2.0);
        assert_eq!(tl.engine_busy(Engine::CopyH2D), 0.25);
        assert_eq!(tl.engine_busy(Engine::CopyD2H), 0.0);
    }

    #[test]
    fn synchronize_aligns_all_clocks() {
        let mut tl = Timeline::new();
        let s0 = tl.default_stream();
        let s1 = tl.create_stream();
        tl.schedule(s0, Engine::Compute, 5.0);
        let t = tl.synchronize();
        // After sync, new work on the other stream starts at the barrier.
        let (c0, _) = tl.schedule(s1, Engine::CopyH2D, 1.0);
        assert_eq!(c0, t);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_duration() {
        let mut tl = Timeline::new();
        let s = tl.default_stream();
        tl.schedule(s, Engine::Compute, -1.0);
    }
}
