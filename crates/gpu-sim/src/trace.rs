//! Execution tracing: a per-operation timeline of the simulated device.
//!
//! When enabled on a [`crate::GpuDevice`], every kernel and transfer
//! records its `(name, engine, stream, start, end)`. [`render_gantt`]
//! draws the three engines as an ASCII chart — the quickest way to see
//! whether a double-buffering scheme actually overlapped.

use crate::timeline::Engine;

/// One operation on the device timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Kernel name, `"h2d"` or `"d2h"`.
    pub name: String,
    /// Engine the operation occupied.
    pub engine: Engine,
    /// Stream index it was issued on.
    pub stream: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl TraceEvent {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Marker for a timeline with no recorded operations. Shared by
/// [`render_gantt`] and the telemetry JSONL report's empty-span encoding
/// so the two artifacts stay textually consistent.
pub const EMPTY_TIMELINE: &str = "(empty timeline)";

/// Render events as an ASCII Gantt chart, one row per engine, `width`
/// character cells across the full makespan. Concurrent operations on one
/// engine cannot exist (engines serialize), so each row is unambiguous.
/// Widths below 10 columns are clamped up to 10 rather than rejected, so
/// a narrow terminal degrades the chart instead of panicking the caller.
pub fn render_gantt(events: &[TraceEvent], width: usize) -> String {
    let width = width.max(10);
    let makespan = events.iter().map(|e| e.end).fold(0.0f64, f64::max);
    if makespan <= 0.0 || events.is_empty() {
        return format!("{EMPTY_TIMELINE}\n");
    }
    let mut out = String::new();
    out.push_str(&format!(
        "makespan: {makespan:.6} s, {} ops\n",
        events.len()
    ));
    for (engine, label) in [
        (Engine::Compute, "compute"),
        (Engine::CopyH2D, "h2d    "),
        (Engine::CopyD2H, "d2h    "),
    ] {
        let mut row = vec![b'.'; width];
        for e in events.iter().filter(|e| e.engine == engine) {
            let lo = ((e.start / makespan) * width as f64) as usize;
            let hi = (((e.end / makespan) * width as f64).ceil() as usize).min(width);
            let glyph = e.name.bytes().next().unwrap_or(b'#');
            for cell in &mut row[lo.min(width - 1)..hi.max(lo + 1).min(width)] {
                *cell = glyph;
            }
        }
        out.push_str(label);
        out.push_str(" |");
        out.push_str(std::str::from_utf8(&row).expect("ascii row"));
        out.push_str("|\n");
    }
    out
}

/// Overlap efficiency of a trace: the fraction of total engine-busy
/// seconds that was *hidden* by running concurrently with other work,
/// `(Σ busy − makespan) / Σ busy`, clamped to `[0, 1]`. A fully serial
/// timeline scores 0; perfect three-engine overlap approaches 2/3. An
/// empty trace scores 0.
pub fn overlap_efficiency(events: &[TraceEvent]) -> f64 {
    let busy: f64 = events.iter().map(|e| e.duration()).sum();
    if busy <= 0.0 {
        return 0.0;
    }
    let lo = events.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
    let hi = events.iter().map(|e| e.end).fold(0.0f64, f64::max);
    ((busy - (hi - lo)) / busy).clamp(0.0, 1.0)
}

/// Utilization summary per engine from a trace: busy seconds / makespan.
pub fn utilization(events: &[TraceEvent]) -> [(Engine, f64); 3] {
    let makespan = events.iter().map(|e| e.end).fold(0.0f64, f64::max);
    let mut out = [
        (Engine::Compute, 0.0),
        (Engine::CopyH2D, 0.0),
        (Engine::CopyD2H, 0.0),
    ];
    if makespan <= 0.0 {
        return out;
    }
    for (engine, frac) in &mut out {
        let busy: f64 = events
            .iter()
            .filter(|e| e.engine == *engine)
            .map(|e| e.duration())
            .sum();
        *frac = busy / makespan;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, engine: Engine, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            engine,
            stream: 0,
            start,
            end,
        }
    }

    #[test]
    fn gantt_renders_rows_for_all_engines() {
        let events = vec![
            ev("minplus", Engine::Compute, 0.0, 1.0),
            ev("d2h", Engine::CopyD2H, 1.0, 2.0),
        ];
        let chart = render_gantt(&events, 20);
        assert!(chart.contains("compute |"));
        assert!(chart.contains('m'), "kernel glyph missing:\n{chart}");
        assert!(chart.contains('d'), "transfer glyph missing:\n{chart}");
        // Compute occupies the left half, d2h the right half.
        let compute_row = chart.lines().find(|l| l.starts_with("compute")).unwrap();
        assert!(compute_row[..compute_row.len() / 2].contains('m'));
    }

    #[test]
    fn empty_trace_is_graceful() {
        assert_eq!(render_gantt(&[], 20), format!("{EMPTY_TIMELINE}\n"));
    }

    #[test]
    fn narrow_width_is_clamped_not_panicking() {
        let events = vec![
            ev("minplus", Engine::Compute, 0.0, 1.0),
            ev("d2h", Engine::CopyD2H, 1.0, 2.0),
        ];
        for width in [0, 1, 3, 9] {
            let chart = render_gantt(&events, width);
            let row = chart.lines().find(|l| l.starts_with("compute")).unwrap();
            // Clamped to the 10-column minimum: the cell area between the
            // pipes is exactly 10 wide.
            let cells = row.split('|').nth(1).unwrap();
            assert_eq!(cells.len(), 10, "width {width} produced: {chart}");
        }
    }

    #[test]
    fn overlap_efficiency_spans_serial_to_concurrent() {
        assert_eq!(overlap_efficiency(&[]), 0.0);
        let serial = vec![
            ev("k", Engine::Compute, 0.0, 1.0),
            ev("d2h", Engine::CopyD2H, 1.0, 2.0),
        ];
        assert!(overlap_efficiency(&serial).abs() < 1e-12);
        let concurrent = vec![
            ev("k", Engine::Compute, 0.0, 2.0),
            ev("d2h", Engine::CopyD2H, 0.0, 2.0),
        ];
        // 4 busy seconds in a 2-second window: half the work was hidden.
        assert!((overlap_efficiency(&concurrent) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_fractions() {
        let events = vec![
            ev("k", Engine::Compute, 0.0, 1.0),
            ev("d2h", Engine::CopyD2H, 0.0, 2.0),
        ];
        let u = utilization(&events);
        assert!((u[0].1 - 0.5).abs() < 1e-12);
        assert!((u[2].1 - 1.0).abs() < 1e-12);
        assert_eq!(u[1].1, 0.0);
    }
}
