//! The simulated GPU device: allocation, transfers, kernel launches,
//! events and profiling.

use crate::kernel::{KernelCost, LaunchConfig};
use crate::memory::{DeviceBuffer, MemoryPool, OutOfDeviceMemory, Pinning};
use crate::profile::DeviceProfile;
use crate::timeline::{Engine, Event, SimTime, StreamId, Timeline};
use std::collections::HashMap;

/// Accumulated statistics for one kernel name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Total simulated seconds spent.
    pub seconds: f64,
}

/// Profiling snapshot of a device (the suite's `nvprof`).
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Per-kernel totals.
    pub kernels: HashMap<String, KernelStats>,
    /// Bytes copied host→device.
    pub bytes_h2d: u64,
    /// Bytes copied device→host.
    pub bytes_d2h: u64,
    /// Number of H2D transfer calls.
    pub transfers_h2d: u64,
    /// Number of D2H transfer calls.
    pub transfers_d2h: u64,
    /// Busy seconds of the compute engine.
    pub compute_busy: f64,
    /// Busy seconds of the H2D copy engine.
    pub h2d_busy: f64,
    /// Busy seconds of the D2H copy engine.
    pub d2h_busy: f64,
    /// Makespan at the time of the report.
    pub elapsed: f64,
    /// Peak device memory in use, bytes.
    pub peak_memory: u64,
    /// Number of device allocations performed.
    pub allocations: u64,
}

impl SimReport {
    /// Total kernel seconds across all kernels.
    pub fn total_kernel_seconds(&self) -> f64 {
        self.kernels.values().map(|k| k.seconds).sum()
    }

    /// Fraction of the makespan spent on D2H+H2D engine work — the
    /// paper's "data transfer overhead" percentage. The two copy engines
    /// run concurrently on different streams, so the *sum* of their busy
    /// seconds can legitimately exceed the makespan and the ratio can
    /// exceed 1. The true ratio is returned unclamped: clamping would
    /// hide both real copy/copy overlap and accounting bugs. On a
    /// serialized timeline (every operation on one stream) each engine's
    /// busy time is bounded by the makespan and the ratio stays ≤ 1.
    pub fn transfer_fraction(&self) -> f64 {
        if self.elapsed <= 0.0 {
            0.0
        } else {
            (self.h2d_busy + self.d2h_busy) / self.elapsed
        }
    }
}

/// Monotone operation counters of a device, cheap to snapshot. The
/// telemetry layer diffs two snapshots to attribute bytes and launches
/// to a phase without touching the timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Bytes copied host→device so far.
    pub bytes_h2d: u64,
    /// Bytes copied device→host so far.
    pub bytes_d2h: u64,
    /// Number of H2D transfer calls so far.
    pub transfers_h2d: u64,
    /// Number of D2H transfer calls so far.
    pub transfers_d2h: u64,
    /// Number of kernel launches so far.
    pub kernel_launches: u64,
}

/// A simulated GPU.
///
/// Kernels and transfers execute *eagerly on the host* (the data is always
/// current), while their cost is charged to the device [`Timeline`] in
/// stream order — so results are bit-exact and timing reflects the device
/// model, including compute/copy overlap across streams.
///
/// ```
/// use apsp_gpu_sim::{DeviceProfile, GpuDevice, KernelCost, LaunchConfig, Pinning};
///
/// let mut dev = GpuDevice::new(DeviceProfile::v100());
/// let s = dev.default_stream();
/// let mut buf = dev.alloc::<u32>(1024).unwrap();
/// dev.h2d(s, &[7; 1024], &mut buf, 0, Pinning::Pinned);
/// dev.launch(s, "my_kernel", LaunchConfig::saturating(),
///            KernelCost::regular(1.4e9, 0.0)); // ~1 ms of modeled compute
/// let mut out = vec![0u32; 1024];
/// dev.d2h(s, &buf, 0..1024, &mut out, Pinning::Pinned);
/// let makespan = dev.synchronize();
/// assert_eq!(out[0], 7);                       // data is real
/// assert!(makespan.seconds() > 1e-3);          // time is modeled
/// ```
#[derive(Debug)]
pub struct GpuDevice {
    profile: DeviceProfile,
    pool: MemoryPool,
    timeline: Timeline,
    kernels: HashMap<String, KernelStats>,
    bytes_h2d: u64,
    bytes_d2h: u64,
    transfers_h2d: u64,
    transfers_d2h: u64,
    kernel_launches: u64,
    efficiency_divisor: f64,
    trace: Option<Vec<crate::trace::TraceEvent>>,
    kernel_stall: Option<(u64, f64)>,
    /// Pending bit-flip faults: `(countdown over non-empty H2D
    /// transfers, bit index)`. Multiple entries count down concurrently,
    /// mirroring the pool's alloc-failure countdowns.
    bit_flips: Vec<(u64, u64)>,
}

impl GpuDevice {
    /// Create a device from a profile.
    pub fn new(profile: DeviceProfile) -> Self {
        let pool = MemoryPool::new(profile.memory_bytes);
        GpuDevice {
            profile,
            pool,
            timeline: Timeline::new(),
            kernels: HashMap::new(),
            bytes_h2d: 0,
            bytes_d2h: 0,
            transfers_h2d: 0,
            transfers_d2h: 0,
            kernel_launches: 0,
            efficiency_divisor: 1.0,
            trace: None,
            kernel_stall: None,
            bit_flips: Vec::new(),
        }
    }

    /// Start recording every operation into a trace (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace (empty slice when tracing is off).
    pub fn trace(&self) -> &[crate::trace::TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn record_trace(
        &mut self,
        name: &str,
        engine: Engine,
        stream: StreamId,
        span: (SimTime, SimTime),
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(crate::trace::TraceEvent {
                name: name.to_string(),
                engine,
                stream: stream.0,
                start: span.0.seconds(),
                end: span.1.seconds(),
            });
        }
    }

    /// Set the kernel-efficiency context: subsequent kernel durations are
    /// multiplied by `divisor` (≥ 1). Implementations whose kernels run
    /// measurably below the profile's anchor efficiency — e.g. chains of
    /// skinny panel multiplies with extraction overheads — declare their
    /// measured divisor around their launches. Transfers are unaffected.
    pub fn set_kernel_efficiency_divisor(&mut self, divisor: f64) {
        assert!(divisor >= 1.0, "divisor must be at least 1");
        self.efficiency_divisor = divisor;
    }

    /// Current kernel-efficiency divisor.
    pub fn kernel_efficiency_divisor(&self) -> f64 {
        self.efficiency_divisor
    }

    /// The device's profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Bytes currently allocated.
    pub fn used_memory(&self) -> u64 {
        self.pool.in_use()
    }

    /// Bytes still available (zero when an injected shrink put capacity
    /// below current usage).
    pub fn free_memory(&self) -> u64 {
        self.pool.capacity().saturating_sub(self.pool.in_use())
    }

    /// Fault injection: make the `kth` subsequent non-empty allocation
    /// (1 = the very next one) fail with [`OutOfDeviceMemory`] regardless
    /// of remaining capacity, then clear the fault. Models spurious
    /// mid-run allocation failures (fragmentation, a competing context).
    pub fn inject_alloc_failure(&self, kth: u64) {
        self.pool.inject_alloc_failure(kth);
    }

    /// Disarm a pending [`Self::inject_alloc_failure`] fault.
    pub fn clear_alloc_failure(&self) {
        self.pool.clear_alloc_failure();
    }

    /// Fault injection: make the `kth` subsequent kernel launch (1 = the
    /// very next one) take `extra_seconds` longer on the timeline, then
    /// clear the fault. The kernel still runs and produces correct data —
    /// only its modeled duration stretches, so a hung/slow kernel is
    /// observable purely through the simulated clock (and thus through a
    /// supervisor's progress budget).
    pub fn inject_kernel_stall(&mut self, kth: u64, extra_seconds: f64) {
        assert!(kth >= 1, "kth is 1-based");
        assert!(extra_seconds >= 0.0, "a stall cannot shorten a kernel");
        self.kernel_stall = Some((kth, extra_seconds));
    }

    /// Disarm a pending [`Self::inject_kernel_stall`] fault.
    pub fn clear_kernel_stall(&mut self) {
        self.kernel_stall = None;
    }

    /// Seconds of injected stall owed by the current launch (one-shot).
    fn take_stall_penalty(&mut self) -> f64 {
        if let Some((k, extra)) = &mut self.kernel_stall {
            *k -= 1;
            if *k == 0 {
                let extra = *extra;
                self.kernel_stall = None;
                return extra;
            }
        }
        0.0
    }

    /// Fault injection: flip a bit in the destination region of the
    /// `kth` subsequent non-empty host→device transfer (1 = the very
    /// next one), then clear the fault. The flip lands *after* the copy,
    /// so the host source stays clean while the device-resident tile is
    /// silently corrupted — the soft-error failure mode the SDC guards
    /// exist to catch. `bit` wraps modulo the region's bit width.
    /// Multiple armed flips count down concurrently. Only arm this when
    /// the transfers carry plain integer elements (all of this suite's
    /// do); see [`DeviceBuffer::flip_bit`].
    pub fn inject_bit_flip(&mut self, kth: u64, bit: u64) {
        assert!(kth >= 1, "transfer ordinals are 1-based");
        self.bit_flips.push((kth, bit));
    }

    /// Disarm all pending [`Self::inject_bit_flip`] faults.
    pub fn clear_bit_flips(&mut self) {
        self.bit_flips.clear();
    }

    /// Count one non-empty H2D transfer against every armed flip; fired
    /// bit indices are returned and their entries consumed.
    fn take_fired_bit_flips(&mut self) -> Vec<u64> {
        let mut fired = Vec::new();
        for (countdown, bit) in self.bit_flips.iter_mut() {
            *countdown -= 1;
            if *countdown == 0 {
                fired.push(*bit);
            }
        }
        self.bit_flips.retain(|(c, _)| *c > 0);
        fired
    }

    /// Fault injection: change usable device memory at runtime. Shrinking
    /// below `used_memory()` is allowed — live buffers stay valid, new
    /// allocations fail until enough is freed. Both the pool and the
    /// profile observe the new size, so algorithms that re-read
    /// `profile().memory_bytes` re-plan against the shrunken device.
    pub fn set_memory_bytes(&mut self, bytes: u64) {
        self.profile.memory_bytes = bytes;
        self.pool.set_capacity(bytes);
    }

    /// The default stream.
    pub fn default_stream(&self) -> StreamId {
        self.timeline.default_stream()
    }

    /// Create an additional stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.timeline.create_stream()
    }

    /// Allocate a zero-initialized device buffer of `len` elements.
    pub fn alloc<T: Copy + Default>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        DeviceBuffer::new(len, self.pool.clone())
    }

    /// Copy `src` into `dst[offset .. offset + src.len()]` (host→device)
    /// on `stream`, charging `latency + bytes / rate(pinning)`.
    pub fn h2d<T: Copy>(
        &mut self,
        stream: StreamId,
        src: &[T],
        dst: &mut DeviceBuffer<T>,
        offset: usize,
        pinning: Pinning,
    ) {
        assert!(
            offset + src.len() <= dst.len(),
            "h2d range {}..{} exceeds buffer of {}",
            offset,
            offset + src.len(),
            dst.len()
        );
        dst.as_mut_slice()[offset..offset + src.len()].copy_from_slice(src);
        if !src.is_empty() && !self.bit_flips.is_empty() {
            for bit in self.take_fired_bit_flips() {
                dst.flip_bit(offset..offset + src.len(), bit);
            }
        }
        let bytes = std::mem::size_of_val(src) as u64;
        let rate = self.profile.transfer_rate(true, pinning == Pinning::Pinned);
        let dur = self.profile.transfer_latency + bytes as f64 / rate;
        let span = self.timeline.schedule(stream, Engine::CopyH2D, dur);
        self.record_trace("h2d", Engine::CopyH2D, stream, span);
        self.bytes_h2d += bytes;
        self.transfers_h2d += 1;
    }

    /// Copy `src[range]` into `dst` (device→host) on `stream`.
    pub fn d2h<T: Copy>(
        &mut self,
        stream: StreamId,
        src: &DeviceBuffer<T>,
        range: std::ops::Range<usize>,
        dst: &mut [T],
        pinning: Pinning,
    ) {
        assert!(range.end <= src.len(), "d2h range out of bounds");
        assert_eq!(range.len(), dst.len(), "d2h destination size mismatch");
        dst.copy_from_slice(&src.as_slice()[range]);
        let bytes = std::mem::size_of_val(dst) as u64;
        let rate = self
            .profile
            .transfer_rate(false, pinning == Pinning::Pinned);
        let dur = self.profile.transfer_latency + bytes as f64 / rate;
        let span = self.timeline.schedule(stream, Engine::CopyD2H, dur);
        self.record_trace("d2h", Engine::CopyD2H, stream, span);
        self.bytes_d2h += bytes;
        self.transfers_d2h += 1;
    }

    /// Charge a kernel execution on `stream`. The caller performs the
    /// actual host-side computation on its buffers; this accounts for the
    /// device time.
    pub fn launch(&mut self, stream: StreamId, name: &str, launch: LaunchConfig, cost: KernelCost) {
        let dur = cost.duration(&self.profile, launch) * self.efficiency_divisor
            + self.take_stall_penalty();
        let span = self.timeline.schedule(stream, Engine::Compute, dur);
        self.record_trace(name, Engine::Compute, stream, span);
        self.kernel_launches += 1;
        let entry = self.kernels.entry(name.to_string()).or_default();
        entry.launches += 1;
        entry.seconds += dur;
    }

    /// Charge a kernel that additionally performs `child_launches`
    /// device-side (dynamic-parallelism) launches.
    pub fn launch_with_children(
        &mut self,
        stream: StreamId,
        name: &str,
        launch: LaunchConfig,
        cost: KernelCost,
        child_launches: u64,
    ) {
        let dur = cost.duration(&self.profile, launch) * self.efficiency_divisor
            + child_launches as f64 * self.profile.dynamic_launch_overhead
            + self.take_stall_penalty();
        let span = self.timeline.schedule(stream, Engine::Compute, dur);
        self.record_trace(name, Engine::Compute, stream, span);
        self.kernel_launches += 1;
        let entry = self.kernels.entry(name.to_string()).or_default();
        entry.launches += 1;
        entry.seconds += dur;
    }

    /// Record an event on a stream.
    pub fn record_event(&self, stream: StreamId) -> Event {
        self.timeline.record_event(stream)
    }

    /// Make `stream` wait on `event`.
    pub fn wait_event(&mut self, stream: StreamId, event: Event) {
        self.timeline.wait_event(stream, event);
    }

    /// Device-wide barrier; returns the makespan so far.
    pub fn synchronize(&mut self) -> SimTime {
        self.timeline.synchronize()
    }

    /// Current makespan without a barrier.
    pub fn elapsed(&self) -> SimTime {
        self.timeline.now()
    }

    /// Cheap snapshot of the monotone operation counters (no timeline
    /// access, no allocation).
    pub fn counters(&self) -> DeviceCounters {
        DeviceCounters {
            bytes_h2d: self.bytes_h2d,
            bytes_d2h: self.bytes_d2h,
            transfers_h2d: self.transfers_h2d,
            transfers_d2h: self.transfers_d2h,
            kernel_launches: self.kernel_launches,
        }
    }

    /// Profiling snapshot.
    pub fn report(&self) -> SimReport {
        let report = SimReport {
            kernels: self.kernels.clone(),
            bytes_h2d: self.bytes_h2d,
            bytes_d2h: self.bytes_d2h,
            transfers_h2d: self.transfers_h2d,
            transfers_d2h: self.transfers_d2h,
            compute_busy: self.timeline.engine_busy(Engine::Compute),
            h2d_busy: self.timeline.engine_busy(Engine::CopyH2D),
            d2h_busy: self.timeline.engine_busy(Engine::CopyD2H),
            elapsed: self.timeline.now().seconds(),
            peak_memory: self.pool.peak(),
            allocations: self.pool.alloc_count(),
        };
        // Each engine serializes its own operations, so no single
        // engine's busy time can exceed the makespan. A violation means
        // the timeline's accounting is broken, which `.min(1.0)` used to
        // mask.
        debug_assert!(
            report.compute_busy <= report.elapsed + 1e-9,
            "compute engine busy {} exceeds makespan {}",
            report.compute_busy,
            report.elapsed
        );
        debug_assert!(
            report.h2d_busy <= report.elapsed + 1e-9,
            "h2d engine busy {} exceeds makespan {}",
            report.h2d_busy,
            report.elapsed
        );
        debug_assert!(
            report.d2h_busy <= report.elapsed + 1e-9,
            "d2h engine busy {} exceeds makespan {}",
            report.d2h_busy,
            report.elapsed
        );
        report
    }

    /// The paper measures PCIe throughput by timing a 1M-integer D2H copy
    /// under `nvprof`; this replicates that measurement on the simulated
    /// link and returns bytes/second (pinned). On artificially tiny
    /// devices the probe shrinks to half the free memory.
    pub fn measure_transfer_throughput(&mut self) -> f64 {
        let stream = self.default_stream();
        let len = (self.free_memory() as usize / 8).clamp(1, 1_000_000);
        let buf: DeviceBuffer<u32> = self.alloc(len).expect("probe sized to available memory");
        let mut host = vec![0u32; len];
        let before = self.elapsed();
        self.d2h(stream, &buf, 0..len, &mut host, Pinning::Pinned);
        let after = self.synchronize();
        let bytes = 4.0 * len as f64;
        bytes / (after - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> GpuDevice {
        GpuDevice::new(DeviceProfile::v100())
    }

    #[test]
    fn transfers_move_data_and_time() {
        let mut d = dev();
        let s = d.default_stream();
        let mut buf: DeviceBuffer<u32> = d.alloc(8).unwrap();
        d.h2d(s, &[1, 2, 3, 4], &mut buf, 2, Pinning::Pinned);
        assert_eq!(&buf.as_slice()[..8], &[0, 0, 1, 2, 3, 4, 0, 0]);
        let mut out = vec![0u32; 2];
        d.d2h(s, &buf, 3..5, &mut out, Pinning::Pinned);
        assert_eq!(out, vec![2, 3]);
        assert!(d.elapsed().seconds() > 0.0);
        let r = d.report();
        assert_eq!(r.bytes_h2d, 16);
        assert_eq!(r.bytes_d2h, 8);
        assert_eq!(r.transfers_h2d, 1);
        assert_eq!(r.transfers_d2h, 1);
    }

    #[test]
    fn pageable_transfers_cost_more() {
        let mut d1 = dev();
        let mut d2 = dev();
        let s = d1.default_stream();
        let buf1: DeviceBuffer<u32> = d1.alloc(1 << 20).unwrap();
        let buf2: DeviceBuffer<u32> = d2.alloc(1 << 20).unwrap();
        let mut out = vec![0u32; 1 << 20];
        d1.d2h(s, &buf1, 0..1 << 20, &mut out, Pinning::Pinned);
        let t_pinned = d1.synchronize().seconds();
        d2.d2h(s, &buf2, 0..1 << 20, &mut out, Pinning::Pageable);
        let t_pageable = d2.synchronize().seconds();
        assert!(t_pageable > t_pinned * 1.5, "{t_pageable} vs {t_pinned}");
    }

    #[test]
    fn kernel_launch_accounts_time_by_name() {
        let mut d = dev();
        let s = d.default_stream();
        let cost = KernelCost::regular(1.4e12, 0.0); // ~1 s
        d.launch(s, "minplus", LaunchConfig::saturating(), cost);
        d.launch(s, "minplus", LaunchConfig::saturating(), cost);
        let r = d.report();
        let k = &r.kernels["minplus"];
        assert_eq!(k.launches, 2);
        assert!((k.seconds - 2.0).abs() < 0.01);
        assert!((r.compute_busy - 2.0).abs() < 0.01);
    }

    #[test]
    fn dynamic_children_add_overhead() {
        let mut d = dev();
        let s = d.default_stream();
        let cost = KernelCost::regular(0.0, 0.0);
        d.launch_with_children(s, "mssp", LaunchConfig::saturating(), cost, 1000);
        let expect =
            d.profile().kernel_launch_overhead + 1000.0 * d.profile().dynamic_launch_overhead;
        assert!((d.elapsed().seconds() - expect).abs() < 1e-9);
    }

    #[test]
    fn overlap_requires_streams() {
        // Same work, one stream vs two: the two-stream version must be
        // faster because compute overlaps the copy-out.
        let run = |two_streams: bool| -> f64 {
            let mut d = dev();
            let s0 = d.default_stream();
            let s1 = if two_streams { d.create_stream() } else { s0 };
            let buf: DeviceBuffer<u32> = d.alloc(1 << 22).unwrap();
            let mut host = vec![0u32; 1 << 22];
            // Kernel time (~1.4 ms) comparable to the 16 MB copy (~1.4 ms)
            // so overlap has something to win.
            let cost = KernelCost::regular(2.0e9, 0.0);
            for i in 0..8 {
                let s = if i % 2 == 0 { s0 } else { s1 };
                d.launch(s, "work", LaunchConfig::saturating(), cost);
                d.d2h(s, &buf, 0..1 << 22, &mut host, Pinning::Pinned);
            }
            d.synchronize().seconds()
        };
        let serial = run(false);
        let overlapped = run(true);
        assert!(
            overlapped < serial * 0.85,
            "overlapped {overlapped} vs serial {serial}"
        );
    }

    #[test]
    fn memory_exhaustion_propagates() {
        let d = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1024));
        assert!(d.alloc::<u64>(100).is_ok());
        assert!(d.alloc::<u64>(200).is_err());
    }

    #[test]
    fn injected_alloc_failure_is_one_shot() {
        let d = dev();
        d.inject_alloc_failure(1);
        let err = d.alloc::<u32>(16).unwrap_err();
        assert_eq!(err.available, 0);
        assert!(d.alloc::<u32>(16).is_ok(), "fault must clear after firing");
    }

    #[test]
    fn injected_kernel_stall_is_one_shot_and_timeline_only() {
        let mut d = dev();
        let s = d.default_stream();
        let cost = KernelCost::regular(1.4e12, 0.0); // ~1 s
        d.inject_kernel_stall(2, 5.0);
        d.launch(s, "work", LaunchConfig::saturating(), cost);
        let after_first = d.synchronize().seconds();
        assert!(after_first < 1.5, "first launch unaffected: {after_first}");
        d.launch(s, "work", LaunchConfig::saturating(), cost);
        let after_second = d.synchronize().seconds();
        assert!(
            after_second - after_first > 5.0,
            "second launch absorbs the stall: {after_second}"
        );
        d.launch(s, "work", LaunchConfig::saturating(), cost);
        let after_third = d.synchronize().seconds();
        assert!(
            after_third - after_second < 1.5,
            "fault must clear after firing: {after_third}"
        );
        assert_eq!(d.report().kernels["work"].launches, 3);
    }

    #[test]
    fn injected_bit_flip_corrupts_device_not_host() {
        let mut d = dev();
        let s = d.default_stream();
        let mut buf: DeviceBuffer<u32> = d.alloc(8).unwrap();
        let src = [5u32; 4];
        // Second transfer, bit 1 of its destination region (element 0).
        d.inject_bit_flip(2, 1);
        d.h2d(s, &src, &mut buf, 0, Pinning::Pinned);
        assert_eq!(&buf.as_slice()[..4], &[5, 5, 5, 5], "first is clean");
        d.h2d(s, &src, &mut buf, 4, Pinning::Pinned);
        assert_eq!(src, [5; 4], "host source untouched");
        assert_eq!(
            &buf.as_slice()[4..],
            &[5 ^ 2, 5, 5, 5],
            "device region carries the flip"
        );
        // One-shot: the next transfer is clean again.
        d.h2d(s, &src, &mut buf, 0, Pinning::Pinned);
        assert_eq!(&buf.as_slice()[..4], &[5, 5, 5, 5]);
    }

    #[test]
    fn bit_flips_count_down_concurrently_and_clear() {
        let mut d = dev();
        let s = d.default_stream();
        let mut buf: DeviceBuffer<u32> = d.alloc(1).unwrap();
        d.inject_bit_flip(1, 0);
        d.inject_bit_flip(2, 0);
        d.h2d(s, &[0u32], &mut buf, 0, Pinning::Pinned);
        assert_eq!(buf.as_slice(), &[1], "first flip fired");
        d.h2d(s, &[0u32], &mut buf, 0, Pinning::Pinned);
        assert_eq!(buf.as_slice(), &[1], "second flip fired");
        d.inject_bit_flip(1, 0);
        d.clear_bit_flips();
        d.h2d(s, &[0u32], &mut buf, 0, Pinning::Pinned);
        assert_eq!(buf.as_slice(), &[0], "disarmed before firing");
        // Empty transfers never consume a countdown.
        d.inject_bit_flip(1, 0);
        d.h2d(s, &[] as &[u32], &mut buf, 0, Pinning::Pinned);
        d.h2d(s, &[0u32], &mut buf, 0, Pinning::Pinned);
        assert_eq!(buf.as_slice(), &[1]);
    }

    #[test]
    fn shrunken_memory_updates_profile_and_pool() {
        let mut d = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1 << 20));
        let held = d.alloc::<u8>(1 << 19).unwrap();
        d.set_memory_bytes(1 << 18);
        assert_eq!(d.profile().memory_bytes, 1 << 18);
        assert_eq!(d.free_memory(), 0);
        assert!(d.alloc::<u8>(1).is_err());
        drop(held);
        assert!(d.alloc::<u8>(1 << 17).is_ok());
    }

    #[test]
    fn throughput_measurement_matches_profile() {
        let mut d = dev();
        let measured = d.measure_transfer_throughput();
        let expected = d.profile().d2h_bytes_per_sec;
        // Latency skews it slightly below the asymptotic rate.
        assert!(
            measured > 0.9 * expected && measured <= expected,
            "measured {measured} vs {expected}"
        );
    }

    #[test]
    fn trace_records_ops_in_timeline_order() {
        let mut d = dev();
        d.enable_trace();
        let s = d.default_stream();
        let buf: DeviceBuffer<u32> = d.alloc(1024).unwrap();
        let mut host = vec![0u32; 1024];
        d.launch(
            s,
            "work",
            LaunchConfig::saturating(),
            KernelCost::regular(1e9, 0.0),
        );
        d.d2h(s, &buf, 0..1024, &mut host, Pinning::Pinned);
        let trace = d.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].name, "work");
        assert_eq!(trace[1].name, "d2h");
        // Same stream: the copy starts when the kernel ends.
        assert!((trace[1].start - trace[0].end).abs() < 1e-12);
        // And the Gantt renders.
        let chart = crate::trace::render_gantt(trace, 40);
        assert!(chart.contains("compute |"));
    }

    #[test]
    fn trace_off_by_default() {
        let mut d = dev();
        let s = d.default_stream();
        d.launch(
            s,
            "work",
            LaunchConfig::saturating(),
            KernelCost::regular(1.0, 0.0),
        );
        assert!(d.trace().is_empty());
    }

    #[test]
    fn transfer_fraction_is_bounded_on_a_serialized_timeline() {
        // Everything on one stream: each engine's busy time is a subset
        // of the makespan, so the unclamped ratio must stay within 1.
        let mut d = dev();
        let s = d.default_stream();
        let mut buf: DeviceBuffer<u32> = d.alloc(1024).unwrap();
        let mut out = vec![0u32; 1024];
        d.h2d(s, &[3u32; 1024], &mut buf, 0, Pinning::Pinned);
        d.launch(
            s,
            "work",
            LaunchConfig::saturating(),
            KernelCost::regular(1e9, 0.0),
        );
        d.d2h(s, &buf, 0..1024, &mut out, Pinning::Pinned);
        d.synchronize();
        let r = d.report();
        assert!(
            r.transfer_fraction() > 0.0 && r.transfer_fraction() <= 1.0,
            "serialized timeline must keep the ratio in (0, 1]: {}",
            r.transfer_fraction()
        );
    }

    #[test]
    fn transfer_fraction_reports_true_ratio_under_copy_overlap() {
        // H2D on one stream, D2H on another: the copy engines run
        // concurrently, so their combined busy time exceeds the makespan
        // and the honest ratio exceeds 1. The old `.min(1.0)` clamp hid
        // exactly this case.
        let mut d = dev();
        let s0 = d.default_stream();
        let s1 = d.create_stream();
        let mut buf: DeviceBuffer<u32> = d.alloc(1 << 20).unwrap();
        let src = vec![1u32; 1 << 20];
        let mut out = vec![0u32; 1 << 20];
        for _ in 0..4 {
            d.h2d(s0, &src, &mut buf, 0, Pinning::Pinned);
            d.d2h(s1, &buf, 0..1 << 20, &mut out, Pinning::Pinned);
        }
        d.synchronize();
        let r = d.report();
        assert!(
            r.transfer_fraction() > 1.0,
            "concurrent copy engines must push the ratio past 1: {}",
            r.transfer_fraction()
        );
    }

    #[test]
    fn counters_snapshot_tracks_operations() {
        let mut d = dev();
        let s = d.default_stream();
        assert_eq!(d.counters(), DeviceCounters::default());
        let mut buf: DeviceBuffer<u32> = d.alloc(16).unwrap();
        let mut out = vec![0u32; 16];
        d.h2d(s, &[1u32; 16], &mut buf, 0, Pinning::Pinned);
        d.launch(
            s,
            "work",
            LaunchConfig::saturating(),
            KernelCost::regular(1.0, 0.0),
        );
        d.launch_with_children(
            s,
            "mssp",
            LaunchConfig::saturating(),
            KernelCost::regular(1.0, 0.0),
            4,
        );
        d.d2h(s, &buf, 0..16, &mut out, Pinning::Pinned);
        let c = d.counters();
        assert_eq!(c.bytes_h2d, 64);
        assert_eq!(c.bytes_d2h, 64);
        assert_eq!(c.transfers_h2d, 1);
        assert_eq!(c.transfers_d2h, 1);
        assert_eq!(c.kernel_launches, 2);
    }
}
