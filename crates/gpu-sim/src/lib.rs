//! Discrete-event GPU device simulator.
//!
//! The paper runs on NVIDIA V100/K80 GPUs; this environment has no GPU, so
//! the suite substitutes a *simulated device*: kernels execute on the host
//! (bit-exact results, fully testable) while a timeline model charges
//! **simulated time** derived from a [`DeviceProfile`] — effective compute
//! throughput, device memory bandwidth, PCIe H2D/D2H throughput, kernel
//! launch overheads and per-transfer latency.
//!
//! Everything the out-of-core algorithms depend on is modeled:
//!
//! * **capacity-limited device memory** ([`memory`]) — allocation fails
//!   past the profile's capacity, which is what forces the out-of-core
//!   block/batch sizing formulas (`n_d`, `bat`, `N_row`) to engage;
//! * **streams + copy/compute engines** ([`timeline`]) — one compute
//!   engine and one copy engine per direction; operations on the same
//!   stream serialize, operations on different streams overlap up to
//!   engine contention, so double-buffered transfer/compute overlap (the
//!   paper's Fig 8 optimization) falls out of the makespan computation;
//! * **kernel cost model** ([`kernel`]) — duration =
//!   `launch_overhead + max(flops/compute, bytes/bandwidth) ·
//!   irregularity / occupancy`, where occupancy penalizes kernels that
//!   launch fewer blocks than the device can host (the effect the paper's
//!   dynamic-parallelism optimization attacks);
//! * **pinned vs pageable transfers and per-transfer latency** — the
//!   effects the paper's transfer batching attacks;
//! * a **profiler** ([`device::SimReport`]) with per-kernel and per-engine
//!   breakdowns, mirroring what the authors extracted from `nvprof`.
//!
//! Two stock profiles mirror the paper's Table II hardware
//! ([`DeviceProfile::v100`], [`DeviceProfile::k80`]); the PCIe throughputs
//! are the paper's own measured values (11.75 and 7.23 GB/s).

pub mod device;
pub mod kernel;
pub mod memory;
pub mod profile;
pub mod timeline;
pub mod trace;

pub use device::{DeviceCounters, GpuDevice, SimReport};
pub use kernel::{KernelCost, LaunchConfig};
pub use memory::{DeviceBuffer, OutOfDeviceMemory, Pinning};
pub use profile::DeviceProfile;
pub use timeline::{Engine, Event, SimTime, StreamId, Timeline};
pub use trace::TraceEvent;
