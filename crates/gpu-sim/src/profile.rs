//! Device profiles: the constants the timing model runs on.

/// Performance/capacity description of a simulated GPU.
///
/// The two stock profiles correspond to the paper's Table II hardware.
/// Compute throughputs are *effective* rates for the suite's workloads
/// (min-plus inner loops, frontier relaxations), not peak FLOPS: they were
/// chosen so a blocked Floyd-Warshall over `n = 70,000` vertices lands
/// near the paper's Table VI anchor measurement on the V100, with the K80
/// scaled by the hardware ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name (appears in reports).
    pub name: String,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Number of streaming multiprocessors (Table II).
    pub sm_count: u32,
    /// Resident thread blocks needed to saturate the device; kernels
    /// launching fewer blocks run at proportionally lower occupancy.
    pub saturating_blocks: u32,
    /// Effective compute throughput for regular kernels, in scalar
    /// operations (one min-plus update) per second.
    pub compute_ops_per_sec: f64,
    /// Device memory bandwidth in bytes per second.
    pub mem_bandwidth: f64,
    /// Host→device PCIe throughput for pinned memory, bytes/second.
    pub h2d_bytes_per_sec: f64,
    /// Device→host PCIe throughput for pinned memory, bytes/second.
    pub d2h_bytes_per_sec: f64,
    /// Throughput multiplier (≤ 1) applied to pageable (non-pinned)
    /// transfers.
    pub pageable_penalty: f64,
    /// Fixed cost of one kernel launch, seconds.
    pub kernel_launch_overhead: f64,
    /// Fixed cost of one device-side (dynamic-parallelism) child launch,
    /// seconds. Higher than a host launch — the effect that makes the
    /// paper restrict child kernels to high-degree vertices.
    pub dynamic_launch_overhead: f64,
    /// Fixed per-transfer latency (driver + DMA setup), seconds. This is
    /// the term the paper's transfer batching amortizes.
    pub transfer_latency: f64,
    /// Latency floor per frontier-loop iteration of one resident thread
    /// block (seconds). Frontier kernels serialize on global-memory round
    /// trips — queue swap, bucket split, atomics — so an SSSP of `I`
    /// iterations cannot beat `I ×` this however small its frontiers are.
    /// This is the mechanism that makes high-diameter road networks
    /// hostile to GPU SSSP and hence drives the paper's "boundary wins on
    /// small-separator graphs" result.
    pub frontier_iter_floor: f64,
}

impl DeviceProfile {
    /// NVIDIA Tesla V100 (16 GB), the paper's primary device. The PCIe
    /// throughput (11.75 GB/s D2H) is the paper's measured value.
    pub fn v100() -> Self {
        DeviceProfile {
            name: "Tesla V100".to_string(),
            memory_bytes: 16 * (1 << 30),
            sm_count: 80,
            saturating_blocks: 160,
            // Anchor: paper Table VI measures blocked FW at n = 70,000 in
            // ≈ 245.8 s ⇒ n³ / t ≈ 1.40e12 effective min-plus ops/s.
            compute_ops_per_sec: 1.40e12,
            mem_bandwidth: 900.0e9,
            h2d_bytes_per_sec: 12.0e9,
            d2h_bytes_per_sec: 11.75e9,
            // Pageable small-block copies sustain ~1.4 GB/s on this
            // hardware era — the regime behind the paper's 70–84%
            // unoptimized transfer fractions (Section III-C / Fig 8).
            pageable_penalty: 0.12,
            kernel_launch_overhead: 5.0e-6,
            dynamic_launch_overhead: 12.0e-6,
            transfer_latency: 18.0e-6,
            frontier_iter_floor: 6.0e-6,
        }
    }

    /// NVIDIA Tesla K80 (one GK210 die, 12 GB). PCIe throughput is the
    /// paper's measured 7.23 GB/s; compute scaled from the V100 anchor by
    /// the hardware generation gap (≈ 4×).
    pub fn k80() -> Self {
        DeviceProfile {
            name: "Tesla K80".to_string(),
            memory_bytes: 12 * (1 << 30),
            sm_count: 13,
            saturating_blocks: 26,
            compute_ops_per_sec: 3.5e11,
            mem_bandwidth: 240.0e9,
            h2d_bytes_per_sec: 7.5e9,
            d2h_bytes_per_sec: 7.23e9,
            pageable_penalty: 0.12,
            kernel_launch_overhead: 8.0e-6,
            dynamic_launch_overhead: 20.0e-6,
            transfer_latency: 25.0e-6,
            frontier_iter_floor: 10.0e-6,
        }
    }

    /// Derive a profile whose memory is divided by `factor` (throughputs
    /// unchanged). Used by the scaled reproduction: dividing graph `n` by
    /// `s` divides the output matrix by `s²`, so dividing device memory by
    /// `s²` preserves the out-of-core block structure (`n_d`, `bat`,
    /// `N_row`) of the paper-scale runs.
    pub fn with_memory_divided(&self, factor: u64) -> Self {
        assert!(factor >= 1);
        let mut p = self.clone();
        p.memory_bytes = (self.memory_bytes / factor).max(1 << 16);
        p.name = format!("{} (mem/{factor})", self.name);
        p
    }

    /// Replace the memory capacity outright (bytes).
    pub fn with_memory_bytes(&self, bytes: u64) -> Self {
        let mut p = self.clone();
        p.memory_bytes = bytes;
        p
    }

    /// Divide the fixed per-operation overheads (kernel launch, dynamic
    /// launch, transfer latency) by `factor`.
    ///
    /// Scaled-down reproductions shrink every *throughput-governed* term
    /// (compute, traffic) by the scale factor, but fixed overheads would
    /// stay put and distort the compute:overhead ratios relative to the
    /// paper-scale run; dividing them by the same factor restores the
    /// ratios (time-scale fidelity).
    pub fn with_overheads_divided(&self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        let mut p = self.clone();
        p.kernel_launch_overhead /= factor;
        p.dynamic_launch_overhead /= factor;
        p.transfer_latency /= factor;
        p
    }

    /// Derive the profile for a reproduction whose workloads were scaled
    /// down by `scale` (graph `n` and `m` divided by `scale`):
    ///
    /// * memory ÷ `scale²` — the output matrix is n², so out-of-core
    ///   block/batch structure is preserved;
    /// * fixed overheads ÷ `scale` — keeps overhead:compute ratios near
    ///   the paper-scale run;
    /// * `saturating_blocks` ÷ `scale²` (min 1) — tile-kernel grids shrink
    ///   by `scale²`, so occupancy granularity must shrink with them or
    ///   every kernel looks artificially under-occupied;
    /// * `frontier_iter_floor` ÷ `scale²` — iteration counts shrink more
    ///   slowly than work (diameter ~ √n), so the floor constant absorbs
    ///   the difference.
    ///
    /// No single scalar preserves every regime exactly (terms scale with
    /// different exponents); these rules keep the *orderings and rough
    /// factors* of the paper's comparisons, which is the reproduction
    /// target (DESIGN.md §7).
    pub fn scaled_for_reproduction(&self, scale: usize) -> Self {
        assert!(scale >= 1);
        let s = scale as f64;
        let s2 = (scale * scale) as u64;
        let mut p = self.with_memory_divided(s2).with_overheads_divided(s);
        p.saturating_blocks = (p.saturating_blocks / s2 as u32).max(1);
        p.frontier_iter_floor /= s * s;
        p
    }

    /// Effective transfer throughput for a direction and pinning.
    pub fn transfer_rate(&self, to_device: bool, pinned: bool) -> f64 {
        let base = if to_device {
            self.h2d_bytes_per_sec
        } else {
            self.d2h_bytes_per_sec
        };
        if pinned {
            base
        } else {
            base * self.pageable_penalty
        }
    }

    /// Occupancy factor for a kernel launching `blocks` thread blocks:
    /// `min(1, blocks / saturating_blocks)`.
    pub fn occupancy(&self, blocks: u32) -> f64 {
        if blocks == 0 {
            0.0
        } else {
            (blocks as f64 / self.saturating_blocks as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_anchor_reproduces_table6_fw_time() {
        let p = DeviceProfile::v100();
        let n = 70_000f64;
        let t = n * n * n / p.compute_ops_per_sec;
        assert!((t - 245.0).abs() < 10.0, "t = {t}");
    }

    #[test]
    fn k80_is_slower_than_v100_everywhere() {
        let v = DeviceProfile::v100();
        let k = DeviceProfile::k80();
        assert!(k.compute_ops_per_sec < v.compute_ops_per_sec);
        assert!(k.d2h_bytes_per_sec < v.d2h_bytes_per_sec);
        assert!(k.mem_bandwidth < v.mem_bandwidth);
    }

    #[test]
    fn memory_scaling() {
        let p = DeviceProfile::v100().with_memory_divided(256);
        assert_eq!(p.memory_bytes, 16 * (1u64 << 30) / 256);
        // Never collapses to zero.
        let tiny = DeviceProfile::v100().with_memory_divided(u64::MAX / 2);
        assert!(tiny.memory_bytes >= 1 << 16);
    }

    #[test]
    fn pinned_beats_pageable() {
        let p = DeviceProfile::v100();
        assert!(p.transfer_rate(false, true) > p.transfer_rate(false, false));
        assert_eq!(p.transfer_rate(false, true), p.d2h_bytes_per_sec);
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let p = DeviceProfile::v100();
        assert_eq!(p.occupancy(0), 0.0);
        assert!((p.occupancy(p.saturating_blocks / 2) - 0.5).abs() < 1e-12);
        assert_eq!(p.occupancy(10 * p.saturating_blocks), 1.0);
    }
}
