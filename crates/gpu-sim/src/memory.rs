//! Capacity-limited device memory.
//!
//! Allocation bookkeeping is real even though the backing storage is host
//! RAM: a [`DeviceBuffer`] draws its byte footprint from the device's pool
//! and returns it on drop. Exceeding the profile's capacity yields
//! [`OutOfDeviceMemory`] — the failure mode that forces the out-of-core
//! algorithms to size their blocks and batches.

use parking_lot::Mutex;
use std::sync::Arc;

/// Error returned when an allocation exceeds remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub available: u64,
    /// Total device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} free of {} total",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Whether a host-side staging area counts as pinned (page-locked).
///
/// Pinned transfers run at full PCIe rate; pageable ones pay the profile's
/// `pageable_penalty`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pinning {
    /// Page-locked host memory (`cudaMallocHost` in the original).
    Pinned,
    /// Ordinary host memory.
    Pageable,
}

#[derive(Debug)]
pub(crate) struct PoolInner {
    pub capacity: u64,
    pub in_use: u64,
    pub peak: u64,
    pub alloc_count: u64,
}

/// Shared allocation state of one device.
#[derive(Debug, Clone)]
pub(crate) struct MemoryPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl MemoryPool {
    pub(crate) fn new(capacity: u64) -> Self {
        MemoryPool {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                in_use: 0,
                peak: 0,
                alloc_count: 0,
            })),
        }
    }

    pub(crate) fn reserve(&self, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        let mut p = self.inner.lock();
        let available = p.capacity - p.in_use;
        if bytes > available {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                available,
                capacity: p.capacity,
            });
        }
        p.in_use += bytes;
        p.peak = p.peak.max(p.in_use);
        p.alloc_count += 1;
        Ok(())
    }

    pub(crate) fn release(&self, bytes: u64) {
        let mut p = self.inner.lock();
        debug_assert!(p.in_use >= bytes);
        p.in_use = p.in_use.saturating_sub(bytes);
    }

    pub(crate) fn in_use(&self) -> u64 {
        self.inner.lock().in_use
    }

    pub(crate) fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }

    pub(crate) fn peak(&self) -> u64 {
        self.inner.lock().peak
    }

    pub(crate) fn alloc_count(&self) -> u64 {
        self.inner.lock().alloc_count
    }
}

/// A typed allocation in simulated device memory.
///
/// Holds real host storage (so kernels can compute on it) plus a lease on
/// the device pool. Dropping the buffer frees the device bytes.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: u64,
    pool: MemoryPool,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    pub(crate) fn new(len: usize, pool: MemoryPool) -> Result<Self, OutOfDeviceMemory> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        pool.reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            bytes,
            pool,
        })
    }
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Byte footprint charged to the device.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Read access to the device data (host emulation).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access to the device data (host emulation).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

impl<T> std::ops::Index<usize> for DeviceBuffer<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<usize> for DeviceBuffer<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_usage() {
        let pool = MemoryPool::new(1024);
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(100, pool.clone()).unwrap();
        assert_eq!(pool.in_use(), 400);
        assert_eq!(buf.len(), 100);
        drop(buf);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 400);
        assert_eq!(pool.alloc_count(), 1);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let pool = MemoryPool::new(100);
        let ok: DeviceBuffer<u8> = DeviceBuffer::new(60, pool.clone()).unwrap();
        let err = DeviceBuffer::<u8>::new(50, pool.clone()).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 40);
        assert_eq!(err.capacity, 100);
        drop(ok);
        // Space comes back.
        assert!(DeviceBuffer::<u8>::new(100, pool).is_ok());
    }

    #[test]
    fn zero_length_buffers_are_free() {
        let pool = MemoryPool::new(0);
        let buf: DeviceBuffer<u64> = DeviceBuffer::new(0, pool.clone()).unwrap();
        assert!(buf.is_empty());
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn indexing_and_mutation() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf: DeviceBuffer<u32> = DeviceBuffer::new(4, pool).unwrap();
        buf[2] = 7;
        buf.as_mut_slice()[3] = 9;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 9]);
        assert_eq!(buf[3], 9);
    }

    #[test]
    fn error_displays_usefully() {
        let e = OutOfDeviceMemory {
            requested: 10,
            available: 5,
            capacity: 20,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("5") && s.contains("20"));
    }
}
