//! Capacity-limited device memory.
//!
//! Allocation bookkeeping is real even though the backing storage is host
//! RAM: a [`DeviceBuffer`] draws its byte footprint from the device's pool
//! and returns it on drop. Exceeding the profile's capacity yields
//! [`OutOfDeviceMemory`] — the failure mode that forces the out-of-core
//! algorithms to size their blocks and batches.

use parking_lot::Mutex;
use std::sync::Arc;

/// Error returned when an allocation exceeds remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub available: u64,
    /// Total device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} free of {} total",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Whether a host-side staging area counts as pinned (page-locked).
///
/// Pinned transfers run at full PCIe rate; pageable ones pay the profile's
/// `pageable_penalty`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pinning {
    /// Page-locked host memory (`cudaMallocHost` in the original).
    Pinned,
    /// Ordinary host memory.
    Pageable,
}

#[derive(Debug)]
pub(crate) struct PoolInner {
    pub capacity: u64,
    pub in_use: u64,
    pub peak: u64,
    pub alloc_count: u64,
    /// Fault injection: each entry is a countdown of non-empty
    /// reservations; when one reaches zero that reservation fails with
    /// [`OutOfDeviceMemory`] even if capacity remains, and the entry is
    /// consumed. Models the spurious mid-run allocation failures
    /// (fragmentation, competing contexts) the out-of-core algorithms
    /// must survive. Multiple entries count down concurrently, so a test
    /// can schedule faults at the k-th and j-th future allocations.
    pub fail_countdowns: Vec<u64>,
}

/// Shared allocation state of one device.
#[derive(Debug, Clone)]
pub(crate) struct MemoryPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl MemoryPool {
    pub(crate) fn new(capacity: u64) -> Self {
        MemoryPool {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                in_use: 0,
                peak: 0,
                alloc_count: 0,
                fail_countdowns: Vec::new(),
            })),
        }
    }

    pub(crate) fn reserve(&self, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        let mut p = self.inner.lock();
        let available = p.capacity.saturating_sub(p.in_use);
        if bytes > 0 && !p.fail_countdowns.is_empty() {
            let mut fired = false;
            for countdown in p.fail_countdowns.iter_mut() {
                *countdown -= 1;
                fired |= *countdown == 0;
            }
            p.fail_countdowns.retain(|c| *c > 0);
            if fired {
                return Err(OutOfDeviceMemory {
                    requested: bytes,
                    available: 0, // the injected fault leaves nothing usable
                    capacity: p.capacity,
                });
            }
        }
        if bytes > available {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                available,
                capacity: p.capacity,
            });
        }
        p.in_use += bytes;
        p.peak = p.peak.max(p.in_use);
        p.alloc_count += 1;
        Ok(())
    }

    pub(crate) fn release(&self, bytes: u64) {
        let mut p = self.inner.lock();
        debug_assert!(p.in_use >= bytes);
        p.in_use = p.in_use.saturating_sub(bytes);
    }

    pub(crate) fn in_use(&self) -> u64 {
        self.inner.lock().in_use
    }

    pub(crate) fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }

    pub(crate) fn peak(&self) -> u64 {
        self.inner.lock().peak
    }

    pub(crate) fn alloc_count(&self) -> u64 {
        self.inner.lock().alloc_count
    }

    pub(crate) fn inject_alloc_failure(&self, kth: u64) {
        assert!(kth >= 1, "allocation ordinals are 1-based");
        self.inner.lock().fail_countdowns.push(kth);
    }

    pub(crate) fn clear_alloc_failure(&self) {
        self.inner.lock().fail_countdowns.clear();
    }

    /// Change capacity at runtime. Shrinking below `in_use` is allowed:
    /// existing buffers stay valid, new reservations fail until enough is
    /// released.
    pub(crate) fn set_capacity(&self, bytes: u64) {
        self.inner.lock().capacity = bytes;
    }
}

/// A typed allocation in simulated device memory.
///
/// Holds real host storage (so kernels can compute on it) plus a lease on
/// the device pool. Dropping the buffer frees the device bytes.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: u64,
    pool: MemoryPool,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    pub(crate) fn new(len: usize, pool: MemoryPool) -> Result<Self, OutOfDeviceMemory> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        pool.reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            bytes,
            pool,
        })
    }
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Byte footprint charged to the device.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Read access to the device data (host emulation).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access to the device data (host emulation).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Fault injection: flip one bit inside the element range
    /// `range`, at byte-level offset `bit % (range bytes × 8)`. Models a
    /// soft error corrupting device memory. The caller must only arm
    /// this on buffers of plain integer elements (every bit pattern
    /// valid) — all the suite's device buffers qualify. No-op on an
    /// empty range.
    pub fn flip_bit(&mut self, range: std::ops::Range<usize>, bit: u64) {
        let elems = &mut self.data[range];
        let n_bytes = std::mem::size_of_val(elems);
        if n_bytes == 0 {
            return;
        }
        // SAFETY: `T: Copy` has no drop glue; the region is initialized,
        // and the documented contract restricts arming to integer
        // element types, for which every bit pattern is a valid value.
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(elems.as_mut_ptr() as *mut u8, n_bytes) };
        let b = (bit % (n_bytes as u64 * 8)) as usize;
        bytes[b / 8] ^= 1 << (b % 8);
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

impl<T> std::ops::Index<usize> for DeviceBuffer<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<usize> for DeviceBuffer<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_usage() {
        let pool = MemoryPool::new(1024);
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(100, pool.clone()).unwrap();
        assert_eq!(pool.in_use(), 400);
        assert_eq!(buf.len(), 100);
        drop(buf);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 400);
        assert_eq!(pool.alloc_count(), 1);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let pool = MemoryPool::new(100);
        let ok: DeviceBuffer<u8> = DeviceBuffer::new(60, pool.clone()).unwrap();
        let err = DeviceBuffer::<u8>::new(50, pool.clone()).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 40);
        assert_eq!(err.capacity, 100);
        drop(ok);
        // Space comes back.
        assert!(DeviceBuffer::<u8>::new(100, pool).is_ok());
    }

    #[test]
    fn zero_length_buffers_are_free() {
        let pool = MemoryPool::new(0);
        let buf: DeviceBuffer<u64> = DeviceBuffer::new(0, pool.clone()).unwrap();
        assert!(buf.is_empty());
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn indexing_and_mutation() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf: DeviceBuffer<u32> = DeviceBuffer::new(4, pool).unwrap();
        buf[2] = 7;
        buf.as_mut_slice()[3] = 9;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 9]);
        assert_eq!(buf[3], 9);
    }

    #[test]
    fn injected_failure_hits_kth_alloc_then_clears() {
        let pool = MemoryPool::new(1 << 20);
        pool.inject_alloc_failure(2);
        let _a: DeviceBuffer<u32> = DeviceBuffer::new(8, pool.clone()).unwrap();
        let err = DeviceBuffer::<u32>::new(8, pool.clone()).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.capacity, 1 << 20);
        // One-shot: the next allocation succeeds again.
        assert!(DeviceBuffer::<u32>::new(8, pool.clone()).is_ok());
        // Zero-byte reservations never consume the countdown.
        pool.inject_alloc_failure(1);
        assert!(DeviceBuffer::<u32>::new(0, pool.clone()).is_ok());
        assert!(DeviceBuffer::<u32>::new(1, pool.clone()).is_err());
        // And the fault can be disarmed before it fires.
        pool.inject_alloc_failure(1);
        pool.clear_alloc_failure();
        assert!(DeviceBuffer::<u32>::new(1, pool).is_ok());
    }

    #[test]
    fn multiple_injected_faults_count_down_concurrently() {
        let pool = MemoryPool::new(1 << 20);
        pool.inject_alloc_failure(1);
        pool.inject_alloc_failure(3);
        assert!(DeviceBuffer::<u32>::new(8, pool.clone()).is_err()); // fault 1
        assert!(DeviceBuffer::<u32>::new(8, pool.clone()).is_ok()); // countdown 3 -> 1 left
        assert!(DeviceBuffer::<u32>::new(8, pool.clone()).is_err()); // fault 2
        assert!(DeviceBuffer::<u32>::new(8, pool).is_ok());
    }

    #[test]
    fn shrunken_capacity_blocks_new_allocs_only() {
        let pool = MemoryPool::new(1024);
        let held: DeviceBuffer<u8> = DeviceBuffer::new(512, pool.clone()).unwrap();
        pool.set_capacity(256); // below in_use
        let err = DeviceBuffer::<u8>::new(1, pool.clone()).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.capacity, 256);
        drop(held);
        assert!(DeviceBuffer::<u8>::new(200, pool).is_ok());
    }

    #[test]
    fn flip_bit_targets_the_requested_range_and_wraps() {
        let pool = MemoryPool::new(1 << 20);
        let mut buf: DeviceBuffer<u32> = DeviceBuffer::new(4, pool).unwrap();
        // Bit 0 of element 2 (range starts there).
        buf.flip_bit(2..4, 0);
        assert_eq!(buf.as_slice(), &[0, 0, 1, 0]);
        // 64 bits in the 2-element range: bit 70 wraps to bit 6.
        buf.flip_bit(2..4, 70);
        assert_eq!(buf.as_slice(), &[0, 0, 1 | (1 << 6), 0]);
        // Empty range is a no-op.
        buf.flip_bit(1..1, 5);
        assert_eq!(buf.as_slice(), &[0, 0, 1 | (1 << 6), 0]);
    }

    #[test]
    fn error_displays_usefully() {
        let e = OutOfDeviceMemory {
            requested: 10,
            available: 5,
            capacity: 20,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("5") && s.contains("20"));
    }
}
