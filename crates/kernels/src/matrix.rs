//! Dense distance matrices in device memory.

use apsp_gpu_sim::{DeviceBuffer, GpuDevice, OutOfDeviceMemory, Pinning, StreamId};
use apsp_graph::{Dist, INF};

/// A `rows × cols` row-major distance matrix living in (simulated) device
/// memory.
#[derive(Debug)]
pub struct DeviceMatrix {
    buf: DeviceBuffer<Dist>,
    rows: usize,
    cols: usize,
}

impl DeviceMatrix {
    /// Allocate a device matrix filled with `INF` except for zeros on the
    /// main diagonal (only meaningful for square matrices; rectangular
    /// panels get all-`INF`).
    pub fn alloc(dev: &GpuDevice, rows: usize, cols: usize) -> Result<Self, OutOfDeviceMemory> {
        let mut buf: DeviceBuffer<Dist> = dev.alloc(rows * cols)?;
        buf.as_mut_slice().fill(INF);
        if rows == cols {
            for i in 0..rows {
                buf.as_mut_slice()[i * cols + i] = 0;
            }
        }
        Ok(DeviceMatrix { buf, rows, cols })
    }

    /// Allocate without initialization semantics (all `INF`).
    pub fn alloc_inf(dev: &GpuDevice, rows: usize, cols: usize) -> Result<Self, OutOfDeviceMemory> {
        let mut buf: DeviceBuffer<Dist> = dev.alloc(rows * cols)?;
        buf.as_mut_slice().fill(INF);
        Ok(DeviceMatrix { buf, rows, cols })
    }

    /// Rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access (host emulation).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Dist {
        self.buf.as_slice()[i * self.cols + j]
    }

    /// Element mutation (host emulation).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, d: Dist) {
        self.buf.as_mut_slice()[i * self.cols + j] = d;
    }

    /// The backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Dist] {
        self.buf.as_slice()
    }

    /// The backing slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Dist] {
        self.buf.as_mut_slice()
    }

    /// Upload a host panel into rows `row_offset ..` of this matrix. The
    /// panel is `host.len() / cols` full rows; one transfer is charged.
    pub fn upload_rows(
        &mut self,
        dev: &mut GpuDevice,
        stream: StreamId,
        row_offset: usize,
        host: &[Dist],
        pinning: Pinning,
    ) {
        assert_eq!(host.len() % self.cols, 0, "partial rows in upload");
        dev.h2d(stream, host, &mut self.buf, row_offset * self.cols, pinning);
    }

    /// Download rows `row_range` into `host`; one transfer is charged.
    pub fn download_rows(
        &self,
        dev: &mut GpuDevice,
        stream: StreamId,
        row_range: std::ops::Range<usize>,
        host: &mut [Dist],
        pinning: Pinning,
    ) {
        assert!(row_range.end <= self.rows);
        assert_eq!(host.len(), row_range.len() * self.cols);
        dev.d2h(
            stream,
            &self.buf,
            row_range.start * self.cols..row_range.end * self.cols,
            host,
            pinning,
        );
    }

    /// Extract a rectangular sub-matrix as a host vector (no transfer
    /// charged — used for device-side shuffles whose cost the caller
    /// models as part of a kernel).
    pub fn submatrix(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Vec<Dist> {
        let mut out = Vec::with_capacity(rows.len() * cols.len());
        for i in rows {
            out.extend_from_slice(
                &self.buf.as_slice()[i * self.cols + cols.start..i * self.cols + cols.end],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_gpu_sim::DeviceProfile;

    fn dev() -> GpuDevice {
        GpuDevice::new(DeviceProfile::v100())
    }

    #[test]
    fn square_alloc_has_zero_diagonal() {
        let d = dev();
        let m = DeviceMatrix::alloc(&d, 3, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 0 } else { INF });
            }
        }
    }

    #[test]
    fn rectangular_alloc_is_all_inf() {
        let d = dev();
        let m = DeviceMatrix::alloc(&d, 2, 5).unwrap();
        assert!(m.as_slice().iter().all(|&x| x == INF));
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut d = dev();
        let s = d.default_stream();
        let mut m = DeviceMatrix::alloc(&d, 4, 3).unwrap();
        let panel = vec![1, 2, 3, 4, 5, 6]; // two rows
        m.upload_rows(&mut d, s, 1, &panel, Pinning::Pinned);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.get(2, 2), 6);
        let mut out = vec![0; 6];
        m.download_rows(&mut d, s, 1..3, &mut out, Pinning::Pinned);
        assert_eq!(out, panel);
        let r = d.report();
        assert_eq!(r.transfers_h2d, 1);
        assert_eq!(r.transfers_d2h, 1);
    }

    #[test]
    fn submatrix_extracts_panel() {
        let d = dev();
        let mut m = DeviceMatrix::alloc(&d, 3, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, (i * 10 + j) as Dist);
            }
        }
        assert_eq!(m.submatrix(1..3, 0..2), vec![10, 11, 20, 21]);
    }

    #[test]
    fn alloc_respects_device_capacity() {
        let d = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(1024));
        assert!(DeviceMatrix::alloc(&d, 16, 16).is_ok());
        assert!(DeviceMatrix::alloc(&d, 64, 64).is_err());
    }
}
