//! Tiled min-plus matrix multiply on the device.
//!
//! `C = min(C, A ⊗ B)` where `(A ⊗ B)[i][j] = min_k A[i][k] + B[k][j]` —
//! the paper's Stage 2/3 update and the boundary algorithm's two chained
//! multiplications. The modeled cost follows the classic shared-memory
//! tiling [14]: every operand tile is staged through shared memory once
//! per use, giving DRAM traffic `≈ 4 bytes · (r·i + i·c) · ⌈other/T⌉ +
//! 8 bytes · r·c` for tile side `T`.

use crate::matrix::DeviceMatrix;
use crate::model::{MINPLUS_TILE, THREADS_PER_BLOCK};
use apsp_cpu::parallel::{
    minplus_tile_exec, par_bands_weighted, relax_row_branchless, ExecBackend, SharedSliceMut,
};
use apsp_gpu_sim::{GpuDevice, KernelCost, LaunchConfig, StreamId};

/// Modeled cost of one min-plus multiply of shape `rows × inner × cols`.
pub fn minplus_cost(rows: usize, inner: usize, cols: usize) -> KernelCost {
    let (r, i, c) = (rows as f64, inner as f64, cols as f64);
    let flops = r * i * c;
    let t = MINPLUS_TILE as f64;
    // A tiles reloaded once per column-tile of C; B tiles once per
    // row-tile of C; C read+written once. Tile counts are whole tiles:
    // a 1.5-tile extent still stages two tiles, hence the ceil before
    // the ≥1 floor (plain `(x/t).max(1.0)` under-charged every extent
    // that isn't a multiple of T).
    let bytes =
        4.0 * (r * i * (c / t).ceil().max(1.0) + i * c * (r / t).ceil().max(1.0)) + 8.0 * r * c;
    KernelCost::regular(flops, bytes)
}

/// Launch configuration for a min-plus multiply: one block per output
/// tile.
pub fn minplus_launch(rows: usize, cols: usize) -> LaunchConfig {
    let tiles = rows.div_ceil(MINPLUS_TILE) * cols.div_ceil(MINPLUS_TILE);
    LaunchConfig::new((tiles as u32).max(1), THREADS_PER_BLOCK)
}

/// `C = min(C, A ⊗ B)` between three distinct device matrices, under the
/// default execution backend.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn minplus_kernel(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    a: &DeviceMatrix,
    b: &DeviceMatrix,
) {
    minplus_kernel_exec(dev, stream, c, a, b, ExecBackend::default());
}

/// [`minplus_kernel`] under an explicit execution backend. The three
/// matrices are distinct device allocations, so the parallel backend
/// bands output rows freely; results are bit-identical across backends.
pub fn minplus_kernel_exec(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    a: &DeviceMatrix,
    b: &DeviceMatrix,
    exec: ExecBackend,
) {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "C row mismatch");
    assert_eq!(c.cols(), b.cols(), "C column mismatch");
    let (rows, inner, cols) = (a.rows(), a.cols(), b.cols());
    minplus_tile_exec(
        c.as_mut_slice(),
        cols,
        a.as_slice(),
        inner,
        b.as_slice(),
        cols,
        rows,
        inner,
        cols,
        exec,
    );
    dev.launch(
        stream,
        "minplus",
        minplus_launch(rows, cols),
        minplus_cost(rows, inner, cols),
    );
}

/// In-place pivot-row update `C = min(C, A ⊗ C)` where `A` is square with
/// side `C.rows()`. The (i, k, j) loop may read entries already improved
/// this call — the standard (and provably safe) in-place behaviour the
/// blocked Floyd-Warshall stage 2 relies on.
pub fn minplus_left_inplace(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    a: &DeviceMatrix,
) {
    minplus_left_inplace_exec(dev, stream, c, a, ExecBackend::default());
}

/// [`minplus_left_inplace`] under an explicit execution backend. The
/// update chains through rows of C (row i reads rows k that earlier
/// iterations improved), so even the parallel backend keeps the row loop
/// sequential — only the inner relaxation goes branchless.
pub fn minplus_left_inplace_exec(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    a: &DeviceMatrix,
    exec: ExecBackend,
) {
    assert_eq!(a.rows(), a.cols(), "pivot operand must be square");
    assert_eq!(a.cols(), c.rows(), "inner dimension mismatch");
    let (rows, cols) = (c.rows(), c.cols());
    inplace_update(c.as_mut_slice(), a.as_slice(), rows, cols, true, exec);
    dev.launch(
        stream,
        "minplus_pivot",
        minplus_launch(rows, cols),
        minplus_cost(rows, rows, cols),
    );
}

/// In-place pivot-column update `C = min(C, C ⊗ B)` where `B` is square
/// with side `C.cols()`.
pub fn minplus_right_inplace(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    b: &DeviceMatrix,
) {
    minplus_right_inplace_exec(dev, stream, c, b, ExecBackend::default());
}

/// [`minplus_right_inplace`] under an explicit execution backend. Each
/// row of C reads only itself plus the (read-only) pivot operand, so the
/// parallel backend bands rows across threads — bit-identical to scalar
/// because the per-row k order is unchanged.
pub fn minplus_right_inplace_exec(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    b: &DeviceMatrix,
    exec: ExecBackend,
) {
    assert_eq!(b.rows(), b.cols(), "pivot operand must be square");
    assert_eq!(c.cols(), b.rows(), "inner dimension mismatch");
    let (rows, cols) = (c.rows(), c.cols());
    inplace_update(c.as_mut_slice(), b.as_slice(), rows, cols, false, exec);
    dev.launch(
        stream,
        "minplus_pivot",
        minplus_launch(rows, cols),
        minplus_cost(rows, cols, cols),
    );
}

/// Shared host loop for the two in-place variants. `left` selects
/// `C = min(C, P ⊗ C)` (P square of side `rows`); otherwise
/// `C = min(C, C ⊗ P)` (P square of side `cols`).
fn inplace_update(
    c: &mut [u32],
    p: &[u32],
    rows: usize,
    cols: usize,
    left: bool,
    exec: ExecBackend,
) {
    use apsp_graph::{dist_add, INF};
    if exec.is_scalar() {
        if left {
            for i in 0..rows {
                for k in 0..rows {
                    let pik = p[i * rows + k];
                    if pik >= INF || i == k {
                        continue;
                    }
                    for j in 0..cols {
                        let via = dist_add(pik, c[k * cols + j]);
                        if via < c[i * cols + j] {
                            c[i * cols + j] = via;
                        }
                    }
                }
            }
        } else {
            for i in 0..rows {
                for k in 0..cols {
                    let cik = c[i * cols + k];
                    if cik >= INF {
                        continue;
                    }
                    for j in 0..cols {
                        if j == k {
                            continue;
                        }
                        let via = dist_add(cik, p[k * cols + j]);
                        if via < c[i * cols + j] {
                            c[i * cols + j] = via;
                        }
                    }
                }
            }
        }
        return;
    }
    if left {
        // Order-dependent across rows (row i reads rows k that earlier i
        // iterations improved) — sequential rows, branchless relaxation.
        // Rows i and k are distinct (i == k skipped), so the mutable and
        // shared row views never overlap.
        let ptr = c.as_mut_ptr();
        for i in 0..rows {
            for k in 0..rows {
                let pik = p[i * rows + k];
                if pik >= INF || i == k {
                    continue;
                }
                // SAFETY: i != k ⇒ disjoint rows of the same buffer.
                let row_i = unsafe { std::slice::from_raw_parts_mut(ptr.add(i * cols), cols) };
                let row_k = unsafe { std::slice::from_raw_parts(ptr.add(k * cols), cols) };
                relax_row_branchless(row_i, row_k, pik);
            }
        }
    } else {
        // Each row depends only on itself and the read-only pivot:
        // band-parallel over rows, with the scalar `j == k` skip kept by
        // splitting the relaxation around column k. Weighted banding so
        // small updates stay inline instead of paying thread spawns.
        let threads = exec.resolved_threads();
        let shared = SharedSliceMut::new(c);
        par_bands_weighted(rows, threads, 4, cols * cols, |band| {
            // SAFETY: bands own disjoint rows; `p` is a separate buffer.
            let c = unsafe { shared.slice() };
            for i in band {
                for k in 0..cols {
                    let cik = c[i * cols + k];
                    if cik >= INF {
                        continue;
                    }
                    let row = &mut c[i * cols..(i + 1) * cols];
                    let (head, tail) = row.split_at_mut(k);
                    relax_row_branchless(head, &p[k * cols..k * cols + k], cik);
                    relax_row_branchless(&mut tail[1..], &p[k * cols + k + 1..(k + 1) * cols], cik);
                }
            }
        });
    }
}

/// `C = A ⊗ B` (C pre-filled with `INF` semantics handled by min-update:
/// callers that want a pure product should pass an all-`INF` C).
pub fn minplus_product(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    a: &DeviceMatrix,
    b: &DeviceMatrix,
) {
    minplus_kernel(dev, stream, c, a, b);
}

/// [`minplus_product`] under an explicit execution backend.
pub fn minplus_product_exec(
    dev: &mut GpuDevice,
    stream: StreamId,
    c: &mut DeviceMatrix,
    a: &DeviceMatrix,
    b: &DeviceMatrix,
    exec: ExecBackend,
) {
    minplus_kernel_exec(dev, stream, c, a, b, exec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::INF;

    fn dev() -> GpuDevice {
        GpuDevice::new(DeviceProfile::v100())
    }

    fn mat(d: &GpuDevice, rows: usize, cols: usize, vals: &[u32]) -> DeviceMatrix {
        let mut m = DeviceMatrix::alloc_inf(d, rows, cols).unwrap();
        m.as_mut_slice().copy_from_slice(vals);
        m
    }

    #[test]
    fn small_product_matches_hand_computation() {
        let mut d = dev();
        let s = d.default_stream();
        let a = mat(&d, 2, 2, &[1, INF, INF, 1]);
        let b = mat(&d, 2, 2, &[5, 6, 7, 8]);
        let mut c = DeviceMatrix::alloc_inf(&d, 2, 2).unwrap();
        minplus_product(&mut d, s, &mut c, &a, &b);
        assert_eq!(c.as_slice(), &[6, 7, 8, 9]);
    }

    #[test]
    fn min_update_keeps_smaller_existing_values() {
        let mut d = dev();
        let s = d.default_stream();
        let a = mat(&d, 1, 1, &[10]);
        let b = mat(&d, 1, 1, &[10]);
        let mut c = mat(&d, 1, 1, &[3]);
        minplus_kernel(&mut d, s, &mut c, &a, &b);
        assert_eq!(c.get(0, 0), 3);
    }

    #[test]
    fn rectangular_shapes() {
        let mut d = dev();
        let s = d.default_stream();
        // 1×2 times 2×3.
        let a = mat(&d, 1, 2, &[1, 2]);
        let b = mat(&d, 2, 3, &[10, 20, 30, 100, 200, 300]);
        let mut c = DeviceMatrix::alloc_inf(&d, 1, 3).unwrap();
        minplus_product(&mut d, s, &mut c, &a, &b);
        assert_eq!(c.as_slice(), &[11, 21, 31]);
    }

    #[test]
    fn inf_is_absorbing() {
        let mut d = dev();
        let s = d.default_stream();
        let a = mat(&d, 1, 1, &[INF]);
        let b = mat(&d, 1, 1, &[1]);
        let mut c = DeviceMatrix::alloc_inf(&d, 1, 1).unwrap();
        minplus_product(&mut d, s, &mut c, &a, &b);
        assert_eq!(c.get(0, 0), INF);
    }

    #[test]
    fn charges_compute_time_scaling_cubically() {
        let time_for = |n: usize| -> f64 {
            let mut d = dev();
            let s = d.default_stream();
            let a = DeviceMatrix::alloc(&d, n, n).unwrap();
            let b = DeviceMatrix::alloc(&d, n, n).unwrap();
            let mut c = DeviceMatrix::alloc_inf(&d, n, n).unwrap();
            minplus_product(&mut d, s, &mut c, &a, &b);
            d.synchronize().seconds()
        };
        // Sizes chosen so both launches saturate the device (tile grids
        // past `saturating_blocks`), isolating the cubic flops term.
        let t512 = time_for(512);
        let t1024 = time_for(1024);
        let ratio = t1024 / t512;
        assert!((6.0..10.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn inplace_variants_match_explicit_product() {
        use apsp_cpu::blocked_fw::minplus_tile;
        let mut d = dev();
        let s = d.default_stream();
        // Random-ish small matrices.
        let pivot_vals: Vec<u32> = (0..16).map(|x| (x * 7 + 3) % 23 + 1).collect();
        let c_vals: Vec<u32> = (0..12).map(|x| (x * 5 + 1) % 19 + 1).collect();
        // Left: C (4×3) updated by P (4×4) ⊗ C — compare against repeated
        // explicit tile updates on a copy (in-place can only be ≤).
        let p = mat(&d, 4, 4, &pivot_vals);
        let mut c = mat(&d, 4, 3, &c_vals);
        let mut expect = c_vals.clone();
        minplus_left_inplace(&mut d, s, &mut c, &p);
        // The in-place result must dominate the one-shot product and be
        // dominated by the original.
        let mut one_shot = c_vals.clone();
        minplus_tile(&mut one_shot, 3, &pivot_vals, 4, &c_vals, 3, 4, 4, 3);
        for i in 0..12 {
            assert!(c.as_slice()[i] <= one_shot[i]);
            assert!(c.as_slice()[i] <= expect[i]);
            expect[i] = expect[i].min(one_shot[i]);
        }
    }

    #[test]
    fn inplace_left_converges_like_fw_panel() {
        // In blocked FW, repeating the in-place pivot update is idempotent
        // once converged.
        let mut d = dev();
        let s = d.default_stream();
        let p = mat(&d, 2, 2, &[0, 1, 1, 0]);
        let mut c = mat(&d, 2, 2, &[9, 9, 2, 9]);
        minplus_left_inplace(&mut d, s, &mut c, &p);
        let after_one: Vec<u32> = c.as_slice().to_vec();
        minplus_left_inplace(&mut d, s, &mut c, &p);
        assert_eq!(c.as_slice(), &after_one[..], "second pass changed data");
        // Row 0 must have picked up row 1's cheap entry through P[0][1]=1.
        assert_eq!(c.get(0, 0), 3);
    }

    #[test]
    fn exec_backends_bit_identical_all_variants() {
        // Random-ish operands with INF sprinkled in, ragged shapes.
        let vals = |len: usize, salt: u32| -> Vec<u32> {
            (0..len as u32)
                .map(|x| {
                    let v = x.wrapping_mul(2654435761).wrapping_add(salt);
                    if v % 6 == 0 {
                        INF
                    } else {
                        v % 997
                    }
                })
                .collect()
        };
        let backends = [
            ExecBackend::Parallel { threads: Some(1) },
            ExecBackend::Parallel { threads: Some(3) },
            ExecBackend::Simd { threads: Some(1) },
            ExecBackend::Simd { threads: Some(3) },
        ];
        let (rows, inner, cols) = (19usize, 23usize, 17usize);
        // Three-operand kernel.
        let run_kernel = |exec: ExecBackend| {
            let mut d = dev();
            let s = d.default_stream();
            let a = mat(&d, rows, inner, &vals(rows * inner, 1));
            let b = mat(&d, inner, cols, &vals(inner * cols, 2));
            let mut c = mat(&d, rows, cols, &vals(rows * cols, 3));
            minplus_kernel_exec(&mut d, s, &mut c, &a, &b, exec);
            (c.as_slice().to_vec(), d.synchronize().seconds())
        };
        let scalar = run_kernel(ExecBackend::Scalar);
        for &e in &backends {
            assert_eq!(run_kernel(e), scalar, "kernel {e}");
        }
        // Left in-place.
        let run_left = |exec: ExecBackend| {
            let mut d = dev();
            let s = d.default_stream();
            let p = mat(&d, rows, rows, &vals(rows * rows, 4));
            let mut c = mat(&d, rows, cols, &vals(rows * cols, 5));
            minplus_left_inplace_exec(&mut d, s, &mut c, &p, exec);
            (c.as_slice().to_vec(), d.synchronize().seconds())
        };
        let scalar = run_left(ExecBackend::Scalar);
        for &e in &backends {
            assert_eq!(run_left(e), scalar, "left {e}");
        }
        // Right in-place.
        let run_right = |exec: ExecBackend| {
            let mut d = dev();
            let s = d.default_stream();
            let p = mat(&d, cols, cols, &vals(cols * cols, 6));
            let mut c = mat(&d, rows, cols, &vals(rows * cols, 7));
            minplus_right_inplace_exec(&mut d, s, &mut c, &p, exec);
            (c.as_slice().to_vec(), d.synchronize().seconds())
        };
        let scalar = run_right(ExecBackend::Scalar);
        for &e in &backends {
            assert_eq!(run_right(e), scalar, "right {e}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn rejects_mismatched_shapes() {
        let mut d = dev();
        let s = d.default_stream();
        let a = DeviceMatrix::alloc(&d, 2, 3).unwrap();
        let b = DeviceMatrix::alloc(&d, 2, 2).unwrap();
        let mut c = DeviceMatrix::alloc_inf(&d, 2, 2).unwrap();
        minplus_kernel(&mut d, s, &mut c, &a, &b);
    }
}
