//! Device Bellman-Ford SSSP — the related-work baseline.
//!
//! Many earlier GPU APSP efforts build on Bellman-Ford ([5], [6], [16],
//! [34] in the paper): maximal parallelism (every edge relaxes
//! independently each round) but redundant work, since vertices are
//! processed in arbitrary order. This kernel exists to quantify that
//! trade-off against the Near-Far kernel the paper adopts
//! (`repro ablation-sssp`).

use crate::model::{BYTES_PER_RELAXATION, OPS_PER_RELAXATION, THREADS_PER_BLOCK};
use apsp_gpu_sim::{GpuDevice, KernelCost, LaunchConfig, StreamId};
use apsp_graph::{dist_add, CsrGraph, Dist, VertexId, INF};

/// Statistics from a device Bellman-Ford run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BellmanFordStats {
    /// Rounds until convergence.
    pub rounds: u64,
    /// Total edge relaxations attempted (every edge, every round — the
    /// redundancy the delta-stepping family eliminates).
    pub relaxations: u64,
}

/// Run Bellman-Ford from `source` on the device: one kernel launch per
/// round, each round relaxing every edge in parallel (fully regular, so
/// no irregularity divisor — BF's weakness is work volume, not access
/// pattern).
pub fn bellman_ford_device(
    dev: &mut GpuDevice,
    stream: StreamId,
    g: &CsrGraph,
    source: VertexId,
) -> (Vec<Dist>, BellmanFordStats) {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let m = g.num_edges();
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut stats = BellmanFordStats::default();
    let blocks = ((m.div_ceil(THREADS_PER_BLOCK as usize)) as u32).max(1);
    for _ in 0..n.max(1) {
        stats.rounds += 1;
        stats.relaxations += m as u64;
        let mut changed = false;
        for v in 0..n as VertexId {
            let dv = dist[v as usize];
            if dv >= INF {
                continue;
            }
            for (u, w) in g.edges_from(v) {
                let nd = dist_add(dv, w);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    changed = true;
                }
            }
        }
        // One edge-parallel kernel per round.
        dev.launch(
            stream,
            "bellman_ford",
            LaunchConfig::new(blocks, THREADS_PER_BLOCK),
            KernelCost::regular(
                m as f64 * OPS_PER_RELAXATION,
                m as f64 * BYTES_PER_RELAXATION,
            ),
        );
        if !changed {
            break;
        }
    }
    (dist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_cpu::dijkstra_sssp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, grid_2d, GridOptions, WeightRange};

    fn dev() -> GpuDevice {
        GpuDevice::new(DeviceProfile::v100())
    }

    #[test]
    fn matches_dijkstra() {
        let g = gnp(150, 0.04, WeightRange::new(1, 30), 3);
        let mut d = dev();
        let s = d.default_stream();
        let (dist, stats) = bellman_ford_device(&mut d, s, &g, 0);
        assert_eq!(dist, dijkstra_sssp(&g, 0));
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn does_far_more_work_than_near_far_on_high_diameter_graphs() {
        let g = grid_2d(20, 20, GridOptions::default(), WeightRange::new(1, 9), 5);
        let mut d = dev();
        let s = d.default_stream();
        let (_, bf) = bellman_ford_device(&mut d, s, &g, 0);
        let (_, nf) = crate::near_far_sssp(&g, 0, 5, usize::MAX);
        // BF relaxes all m edges per round for ~diameter rounds.
        assert!(
            bf.relaxations > 4 * nf.total_relaxations(),
            "BF {} vs Near-Far {}",
            bf.relaxations,
            nf.total_relaxations()
        );
    }

    #[test]
    fn rounds_bounded_by_hop_diameter_plus_one() {
        // Path graph 0→1→…→9 in CSR order: one sweep settles everything,
        // plus one round to detect convergence.
        let mut b = apsp_graph::GraphBuilder::new(10);
        for v in 0..9u32 {
            b.add_edge(v, v + 1, 2);
        }
        let g = b.build();
        let mut d = dev();
        let s = d.default_stream();
        let (dist, stats) = bellman_ford_device(&mut d, s, &g, 0);
        assert_eq!(dist[9], 18);
        assert!(stats.rounds <= 3, "rounds = {}", stats.rounds);
    }

    #[test]
    fn charges_one_kernel_per_round() {
        let g = gnp(60, 0.1, WeightRange::default(), 7);
        let mut d = dev();
        let s = d.default_stream();
        let (_, stats) = bellman_ford_device(&mut d, s, &g, 0);
        let report = d.report();
        assert_eq!(report.kernels["bellman_ford"].launches, stats.rounds);
    }
}
