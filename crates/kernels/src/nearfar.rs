//! Near-Far SSSP (Davidson et al. [11]) with work accounting.
//!
//! The simplification of delta-stepping the paper adopts for its GPU SSSP:
//! two queues. Vertices whose tentative distance falls below the current
//! threshold go to the *Near* queue and are processed now; the rest wait
//! in the *Far* queue. When Near drains, the threshold advances by Δ and
//! Far is split against it.
//!
//! Every relaxation and queue operation is counted in [`NearFarStats`];
//! the MSSP kernel converts those counts into modeled device time, so the
//! simulated cost of Johnson's algorithm responds to the input graph's
//! structure exactly the way the paper observes (per-batch times stable
//! within ~2–13%).

use apsp_graph::{dist_add, CsrGraph, Dist, VertexId, INF};

/// Work counters from one Near-Far SSSP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NearFarStats {
    /// Edge relaxations attempted from vertices of "normal" out-degree.
    pub relaxations: u64,
    /// Edge relaxations attempted from high-out-degree vertices (the ones
    /// the dynamic-parallelism child kernels take over).
    pub heavy_relaxations: u64,
    /// Number of Near-queue drain iterations (kernel re-launches in the
    /// real implementation).
    pub near_iterations: u64,
    /// Number of threshold advances (Far-queue splits).
    pub far_splits: u64,
    /// Vertices that were classified heavy at least once.
    pub heavy_vertices: u64,
}

impl NearFarStats {
    /// Total relaxations of both classes.
    pub fn total_relaxations(&self) -> u64 {
        self.relaxations + self.heavy_relaxations
    }

    /// Merge counters (for batch totals).
    pub fn merge(&mut self, other: &NearFarStats) {
        self.relaxations += other.relaxations;
        self.heavy_relaxations += other.heavy_relaxations;
        self.near_iterations += other.near_iterations;
        self.far_splits += other.far_splits;
        self.heavy_vertices += other.heavy_vertices;
    }
}

/// Near-Far SSSP from `source` with bucket width `delta`. Edges leaving a
/// vertex with out-degree `> heavy_degree_threshold` are tallied as heavy
/// relaxations (`u64::MAX` disables the distinction).
pub fn near_far_sssp(
    g: &CsrGraph,
    source: VertexId,
    delta: Dist,
    heavy_degree_threshold: usize,
) -> (Vec<Dist>, NearFarStats) {
    let mut scratch = NearFarScratch::new(g.num_vertices());
    let stats = near_far_core(
        g,
        source,
        delta,
        heavy_degree_threshold,
        &mut scratch,
        false,
    );
    (scratch.dist, stats)
}

/// [`near_far_sssp`] that additionally records the shortest-path tree:
/// `parents[v]` is the predecessor of `v` on a shortest path from
/// `source` (`VertexId::MAX` for the source itself and for unreachable
/// vertices). The real kernel stores this with one extra `atomicExch`
/// per improving relaxation.
pub fn near_far_sssp_with_parents(
    g: &CsrGraph,
    source: VertexId,
    delta: Dist,
    heavy_degree_threshold: usize,
) -> (Vec<Dist>, Vec<VertexId>, NearFarStats) {
    let mut scratch = NearFarScratch::new(g.num_vertices());
    let stats = near_far_core(g, source, delta, heavy_degree_threshold, &mut scratch, true);
    (scratch.dist, scratch.parents, stats)
}

/// Reusable working state for repeated Near-Far runs over one graph.
///
/// A single SSSP instance needs six heap buffers (distances, parents,
/// three membership-flag arrays, two queues). Allocating them fresh per
/// source is fine for one-off calls, but a batched MSSP launch runs
/// hundreds of instances back to back — there the per-source malloc/free
/// churn is measurable against the ~tens-of-µs traversal itself, so the
/// optimized backends hold one scratch per worker and reset it between
/// sources. Resetting writes exactly the values fresh allocation would
/// (`INF` / `VertexId::MAX` / `false` / empty queues), so a reused run
/// is bit-identical to a fresh one by construction.
pub struct NearFarScratch {
    dist: Vec<Dist>,
    parents: Vec<VertexId>,
    heavy_seen: Vec<bool>,
    in_near: Vec<bool>,
    in_far: Vec<bool>,
    near: Vec<VertexId>,
    far: Vec<VertexId>,
    frontier: Vec<VertexId>,
}

impl NearFarScratch {
    /// Scratch for a graph of `n` vertices.
    pub fn new(n: usize) -> Self {
        NearFarScratch {
            dist: vec![INF; n],
            parents: vec![VertexId::MAX; n],
            heavy_seen: vec![false; n],
            in_near: vec![false; n],
            in_far: vec![false; n],
            near: Vec::new(),
            far: Vec::new(),
            frontier: Vec::new(),
        }
    }

    /// The distance vector of the most recent run.
    pub fn dist(&self) -> &[Dist] {
        &self.dist
    }

    /// The parents vector of the most recent run (all `VertexId::MAX`
    /// unless that run tracked parents).
    pub fn parents(&self) -> &[VertexId] {
        &self.parents
    }

    /// Reset every buffer to its fresh-allocation state.
    fn reset(&mut self, track_parents: bool) {
        self.dist.fill(INF);
        if track_parents {
            self.parents.fill(VertexId::MAX);
        }
        self.heavy_seen.fill(false);
        self.in_near.fill(false);
        self.in_far.fill(false);
        self.near.clear();
        self.far.clear();
        self.frontier.clear();
    }
}

/// [`near_far_sssp`] into caller-provided scratch: identical traversal,
/// identical stats, no per-call allocation. Distances land in
/// `scratch.dist()` (and predecessors in `scratch.parents()` when
/// `track_parents` is set).
pub fn near_far_sssp_scratch(
    g: &CsrGraph,
    source: VertexId,
    delta: Dist,
    heavy_degree_threshold: usize,
    scratch: &mut NearFarScratch,
    track_parents: bool,
) -> NearFarStats {
    near_far_core(
        g,
        source,
        delta,
        heavy_degree_threshold,
        scratch,
        track_parents,
    )
}

fn near_far_core(
    g: &CsrGraph,
    source: VertexId,
    delta: Dist,
    heavy_degree_threshold: usize,
    scratch: &mut NearFarScratch,
    track_parents: bool,
) -> NearFarStats {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!(delta >= 1, "delta must be at least 1");
    assert_eq!(scratch.dist.len(), n, "scratch sized for a different graph");
    scratch.reset(track_parents);
    let NearFarScratch {
        dist,
        parents,
        heavy_seen,
        in_near,
        in_far,
        near,
        far,
        frontier,
    } = scratch;
    let mut parents = track_parents.then_some(parents);
    let mut stats = NearFarStats::default();
    dist[source as usize] = 0;
    near.push(source);
    let mut threshold: Dist = delta;
    // Queue-membership flags: the GPU implementation dedups insertions
    // with per-vertex status words (an improved vertex already queued for
    // this pass is not enqueued again); without them every in-degree
    // improvement reprocesses the whole adjacency list and the work count
    // inflates several-fold on high-degree graphs.
    in_near[source as usize] = true;

    loop {
        // Drain the Near queue.
        while !near.is_empty() {
            stats.near_iterations += 1;
            frontier.clear();
            std::mem::swap(near, frontier);
            for &v in frontier.iter() {
                in_near[v as usize] = false;
                let dv = dist[v as usize];
                // Stale entries (distance advanced past the threshold by
                // the time we process them) are re-split into Far.
                if dv >= threshold {
                    if !in_far[v as usize] {
                        in_far[v as usize] = true;
                        far.push(v);
                    }
                    continue;
                }
                let deg = g.out_degree(v);
                let heavy = deg > heavy_degree_threshold;
                if heavy && !heavy_seen[v as usize] {
                    heavy_seen[v as usize] = true;
                    stats.heavy_vertices += 1;
                }
                for (u, w) in g.edges_from(v) {
                    if heavy {
                        stats.heavy_relaxations += 1;
                    } else {
                        stats.relaxations += 1;
                    }
                    let nd = dist_add(dv, w);
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        if let Some(p) = parents.as_mut() {
                            p[u as usize] = v;
                        }
                        if nd < threshold {
                            if !in_near[u as usize] {
                                in_near[u as usize] = true;
                                near.push(u);
                            }
                        } else if !in_far[u as usize] {
                            in_far[u as usize] = true;
                            far.push(u);
                        }
                    }
                }
            }
        }
        if far.is_empty() {
            break;
        }
        // Advance the threshold and split Far.
        stats.far_splits += 1;
        threshold += delta;
        frontier.clear();
        std::mem::swap(far, frontier);
        for &v in frontier.iter() {
            in_far[v as usize] = false;
            let dv = dist[v as usize];
            if dv < threshold {
                if !in_near[v as usize] {
                    in_near[v as usize] = true;
                    near.push(v);
                }
            } else if dv < INF && !in_far[v as usize] {
                in_far[v as usize] = true;
                far.push(v);
            }
        }
        if near.is_empty() && far.is_empty() {
            break;
        }
    }
    stats
}

/// Default Δ for a graph: its mean edge weight (the heuristic the Near-Far
/// paper suggests).
pub fn default_delta(g: &CsrGraph) -> Dist {
    apsp_cpu::delta_stepping::default_delta(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_cpu::dijkstra_sssp;
    use apsp_graph::generators::{gnp, grid_2d, rmat, GridOptions, RmatParams, WeightRange};
    use apsp_graph::GraphBuilder;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = gnp(150, 0.04, WeightRange::new(1, 40), seed);
            for s in [0u32, 75, 149] {
                let (d, _) = near_far_sssp(&g, s, 10, usize::MAX);
                assert_eq!(d, dijkstra_sssp(&g, s), "seed {seed} src {s}");
            }
        }
    }

    #[test]
    fn delta_does_not_change_results() {
        let g = grid_2d(8, 8, GridOptions::default(), WeightRange::new(1, 100), 2);
        let reference = dijkstra_sssp(&g, 0);
        for delta in [1, 7, 50, 101, 100_000] {
            let (d, _) = near_far_sssp(&g, 0, delta, usize::MAX);
            assert_eq!(d, reference, "delta {delta}");
        }
    }

    #[test]
    fn stats_count_real_work() {
        let g = gnp(100, 0.05, WeightRange::default(), 4);
        let (_, st) = near_far_sssp(&g, 0, 25, usize::MAX);
        // Reachable portion of a G(100, 0.05) is nearly everything, so at
        // least one relaxation per reachable edge endpoint.
        assert!(st.total_relaxations() > 100);
        assert!(st.near_iterations >= 1);
        assert_eq!(st.heavy_relaxations, 0); // disabled threshold
    }

    #[test]
    fn heavy_classification_targets_hubs() {
        let g = rmat(
            512,
            4096,
            RmatParams::scale_free(),
            WeightRange::default(),
            9,
        );
        let (_, st) = near_far_sssp(&g, 0, 25, 32);
        assert!(st.heavy_vertices > 0, "scale-free graphs have hubs");
        assert!(st.heavy_relaxations > 0);
        // Hubs are few but account for a disproportionate share of edges.
        assert!(st.heavy_vertices < 100);
    }

    #[test]
    fn small_delta_means_more_splits() {
        let g = grid_2d(10, 10, GridOptions::default(), WeightRange::new(1, 100), 7);
        let (_, fine) = near_far_sssp(&g, 0, 1, usize::MAX);
        let (_, coarse) = near_far_sssp(&g, 0, 10_000, usize::MAX);
        assert!(fine.far_splits > coarse.far_splits);
    }

    #[test]
    fn disconnected_and_trivial() {
        let g = GraphBuilder::new(3).build();
        let (d, st) = near_far_sssp(&g, 1, 5, usize::MAX);
        assert_eq!(d, vec![INF, 0, INF]);
        assert_eq!(st.total_relaxations(), 0);
    }

    #[test]
    fn zero_weight_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        let g = b.build();
        let (d, _) = near_far_sssp(&g, 0, 3, usize::MAX);
        assert_eq!(d, vec![0, 0, 0]);
    }

    #[test]
    fn parents_form_a_consistent_tree() {
        let g = gnp(200, 0.04, WeightRange::new(1, 30), 41);
        let (dist, parents, _) = near_far_sssp_with_parents(&g, 5, 10, usize::MAX);
        assert_eq!(parents[5], u32::MAX, "source has no parent");
        for v in 0..200u32 {
            if v == 5 {
                continue;
            }
            let p = parents[v as usize];
            if dist[v as usize] >= apsp_graph::INF {
                assert_eq!(p, u32::MAX, "unreachable {v} must have no parent");
                continue;
            }
            // The parent edge must exist and be tight.
            let w = g.edge_weight(p, v).expect("parent edge exists");
            assert_eq!(
                dist[v as usize],
                dist[p as usize] + w,
                "parent edge to {v} is not on a shortest path"
            );
        }
    }

    #[test]
    fn parents_walk_back_to_source() {
        let g = grid_2d(9, 9, GridOptions::default(), WeightRange::new(1, 5), 6);
        let (dist, parents, _) = near_far_sssp_with_parents(&g, 0, 3, usize::MAX);
        // Follow parents from the far corner; must reach the source in
        // fewer than n steps with strictly decreasing distance.
        let mut v = 80u32;
        let mut steps = 0;
        while v != 0 {
            let p = parents[v as usize];
            assert!(p != u32::MAX);
            assert!(dist[p as usize] <= dist[v as usize]);
            v = p;
            steps += 1;
            assert!(steps <= 81, "parent chain cycles");
        }
    }
}
