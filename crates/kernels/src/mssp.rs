//! MSSP: the batched multi-source SSSP kernel of the paper's Algorithm 2.
//!
//! One kernel launch computes `bat` independent Near-Far SSSP instances,
//! one per thread block. When `bat` falls below the device's saturating
//! block count the kernel runs at reduced occupancy — the exact
//! under-utilization the paper identifies for edge-heavy graphs — unless
//! the **dynamic parallelism** option is enabled, which offloads the edge
//! lists of high-out-degree vertices to child kernels running at full
//! occupancy (at the price of device-side launch overheads).

use crate::matrix::DeviceMatrix;
use crate::model::{
    BYTES_PER_RELAXATION, FRONTIER_IRREGULARITY, OPS_PER_RELAXATION, THREADS_PER_BLOCK,
};
use crate::nearfar::{near_far_sssp, NearFarStats};
use apsp_cpu::parallel::{par_bands_weighted, ExecBackend, SharedSliceMut};
use apsp_gpu_sim::{GpuDevice, KernelCost, LaunchConfig, StreamId};
use apsp_graph::{CsrGraph, Dist, VertexId};

/// Options for one MSSP launch.
#[derive(Debug, Clone, Copy)]
pub struct MsspOptions {
    /// Near-Far bucket width.
    pub delta: Dist,
    /// Enable the dynamic-parallelism path for high-out-degree vertices.
    pub dynamic_parallelism: bool,
    /// Out-degree above which a vertex's edge list is processed by a
    /// child kernel (ignored unless `dynamic_parallelism`).
    pub heavy_degree_threshold: usize,
    /// Host execution backend: the per-source SSSP instances are
    /// independent, so the parallel backend runs them across threads
    /// (each writes its own output row) — bit-identical to sequential.
    pub exec: ExecBackend,
}

impl MsspOptions {
    /// Defaults: Δ from the graph's mean weight must be set by the caller;
    /// dynamic parallelism off.
    pub fn new(delta: Dist) -> Self {
        MsspOptions {
            delta,
            dynamic_parallelism: false,
            heavy_degree_threshold: 1024,
            exec: ExecBackend::default(),
        }
    }
}

/// Result of one MSSP launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsspOutcome {
    /// Aggregated Near-Far work counters over the batch.
    pub stats: NearFarStats,
    /// Device-side child launches performed (0 without dynamic
    /// parallelism).
    pub child_launches: u64,
}

/// Launch the MSSP kernel: compute SSSP from each of `sources`, storing
/// row `i` of `out` (a `sources.len() × n` device matrix) as the distance
/// vector of `sources[i]`.
pub fn mssp_kernel(
    dev: &mut GpuDevice,
    stream: StreamId,
    g: &CsrGraph,
    sources: &[VertexId],
    out: &mut DeviceMatrix,
    opts: MsspOptions,
) -> MsspOutcome {
    mssp_kernel_impl(dev, stream, g, sources, out, None, opts)
}

/// [`mssp_kernel`] that also fills `parents` (same shape as `out`) with
/// each source's shortest-path-tree predecessors (`VertexId::MAX` for the
/// source and unreachable vertices). Costs one extra store per improving
/// relaxation — charged through a slightly larger byte count.
pub fn mssp_kernel_with_parents(
    dev: &mut GpuDevice,
    stream: StreamId,
    g: &CsrGraph,
    sources: &[VertexId],
    out: &mut DeviceMatrix,
    parents: &mut DeviceMatrix,
    opts: MsspOptions,
) -> MsspOutcome {
    mssp_kernel_impl(dev, stream, g, sources, out, Some(parents), opts)
}

fn mssp_kernel_impl(
    dev: &mut GpuDevice,
    stream: StreamId,
    g: &CsrGraph,
    sources: &[VertexId],
    out: &mut DeviceMatrix,
    mut parents: Option<&mut DeviceMatrix>,
    opts: MsspOptions,
) -> MsspOutcome {
    let n = g.num_vertices();
    assert_eq!(out.rows(), sources.len(), "output row count mismatch");
    assert_eq!(out.cols(), n, "output column count mismatch");
    if let Some(p) = parents.as_deref() {
        assert_eq!(p.rows(), sources.len(), "parents row count mismatch");
        assert_eq!(p.cols(), n, "parents column count mismatch");
    }
    let bat = sources.len();
    if bat == 0 {
        return MsspOutcome::default();
    }

    // Host-exact execution, one "thread block" per source.
    let mut stats = NearFarStats::default();
    let mut max_iterations = 0u64;
    let heavy_threshold = if opts.dynamic_parallelism {
        opts.heavy_degree_threshold
    } else {
        usize::MAX
    };
    let threads = opts.exec.resolved_threads();
    if opts.exec.is_scalar() || threads <= 1 || bat == 1 {
        for (i, &src) in sources.iter().enumerate() {
            if let Some(pm) = parents.as_deref_mut() {
                let (dist, par, s) =
                    crate::nearfar::near_far_sssp_with_parents(g, src, opts.delta, heavy_threshold);
                max_iterations = max_iterations.max(s.near_iterations);
                stats.merge(&s);
                out.as_mut_slice()[i * n..(i + 1) * n].copy_from_slice(&dist);
                pm.as_mut_slice()[i * n..(i + 1) * n].copy_from_slice(&par);
            } else {
                let (dist, s) = near_far_sssp(g, src, opts.delta, heavy_threshold);
                max_iterations = max_iterations.max(s.near_iterations);
                stats.merge(&s);
                out.as_mut_slice()[i * n..(i + 1) * n].copy_from_slice(&dist);
            }
        }
    } else {
        // The SSSP instances are independent: band sources across
        // threads, each writing its own row of `out`/`parents` and its
        // own per-source stats slot, then merge the stats in source
        // order so the aggregate matches the sequential loop exactly.
        let mut per_source = vec![NearFarStats::default(); bat];
        {
            let out_shared = SharedSliceMut::new(out.as_mut_slice());
            let parents_shared = parents
                .as_deref_mut()
                .map(|p| SharedSliceMut::new(p.as_mut_slice()));
            let stats_shared = SharedSliceMut::new(&mut per_source);
            // One SSSP traverses ~n + m elements; weight bands by that so
            // tiny batches on tiny graphs run inline (no thread spawns).
            // Do not be tempted to scale this up to reflect the higher
            // per-element cost of bucket-queue traversal: threading
            // Near-Far instances was measured slower than inline on the
            // bench host even at multi-millisecond bands (irregular
            // access patterns contend for shared cache), so the floor
            // errs toward inline on purpose.
            let work_per_source = n + g.num_edges();
            par_bands_weighted(bat, threads, 1, work_per_source, |band| {
                // SAFETY: bands own disjoint source indices, hence
                // disjoint output rows and stats slots.
                let out = unsafe { out_shared.slice() };
                let per = unsafe { stats_shared.slice() };
                // One scratch per band: the reference backend allocates
                // per source, the optimized backends amortize the six
                // working buffers across the whole band (identical
                // traversal, bit-identical distances — see
                // [`crate::nearfar::NearFarScratch`]).
                let mut scratch = crate::nearfar::NearFarScratch::new(n);
                let track_parents = parents_shared.is_some();
                for i in band {
                    let src = sources[i];
                    let s = crate::nearfar::near_far_sssp_scratch(
                        g,
                        src,
                        opts.delta,
                        heavy_threshold,
                        &mut scratch,
                        track_parents,
                    );
                    per[i] = s;
                    out[i * n..(i + 1) * n].copy_from_slice(scratch.dist());
                    if let Some(ps) = parents_shared {
                        let pm = unsafe { ps.slice() };
                        pm[i * n..(i + 1) * n].copy_from_slice(scratch.parents());
                    }
                }
            });
        }
        for s in &per_source {
            max_iterations = max_iterations.max(s.near_iterations);
            stats.merge(s);
        }
    }

    // Device-time accounting. Frontier iterations serialize on memory
    // latency within each block; with `eff` blocks resident concurrently
    // the batch's summed iterations drain in waves, bounding the kernel
    // from below.
    let launch = LaunchConfig::new(bat as u32, THREADS_PER_BLOCK);
    let eff_blocks = (bat as u32).min(dev.profile().saturating_blocks).max(1) as f64;
    let iter_floor = stats.near_iterations as f64 / eff_blocks * dev.profile().frontier_iter_floor;
    // Parent tracking stores one extra word per improving relaxation.
    let bytes_per_relax = if parents.is_some() {
        BYTES_PER_RELAXATION + 8.0
    } else {
        BYTES_PER_RELAXATION
    };
    if !opts.dynamic_parallelism {
        let relax = stats.total_relaxations() as f64;
        dev.launch(
            stream,
            "mssp",
            launch,
            KernelCost::irregular(
                relax * OPS_PER_RELAXATION,
                relax * bytes_per_relax,
                FRONTIER_IRREGULARITY,
            )
            .with_min_seconds(iter_floor),
        );
        MsspOutcome {
            stats,
            child_launches: 0,
        }
    } else {
        // Parent kernel: the light relaxations at batch-limited occupancy,
        // plus two child launches per *global* traversal iteration (gather
        // edge lists, traverse partitions — the paper's two child
        // kernels). Blocks iterate in lock-step with the slowest SSSP, so
        // the launch count follows the max iteration count, not the sum.
        let light = stats.relaxations as f64;
        let child_launches = 2 * max_iterations;
        dev.launch_with_children(
            stream,
            "mssp_dynpar",
            launch,
            KernelCost::irregular(
                light * OPS_PER_RELAXATION,
                light * bytes_per_relax,
                FRONTIER_IRREGULARITY,
            )
            .with_min_seconds(iter_floor),
            child_launches,
        );
        // Child kernels: heavy edge lists, partitioned into equal chunks
        // across blocks ⇒ full occupancy and better coalescing (lower
        // irregularity).
        let heavy = stats.heavy_relaxations as f64;
        if heavy > 0.0 {
            dev.launch(
                stream,
                "mssp_child",
                LaunchConfig::saturating(),
                KernelCost::irregular(
                    heavy * OPS_PER_RELAXATION,
                    heavy * BYTES_PER_RELAXATION,
                    FRONTIER_IRREGULARITY / 2.0,
                ),
            );
        }
        MsspOutcome {
            stats,
            child_launches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_cpu::dijkstra_sssp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, rmat, RmatParams, WeightRange};

    fn dev() -> GpuDevice {
        GpuDevice::new(DeviceProfile::v100())
    }

    #[test]
    fn batch_rows_match_dijkstra() {
        let g = gnp(120, 0.05, WeightRange::default(), 8);
        let mut d = dev();
        let s = d.default_stream();
        let sources = [3u32, 50, 119];
        let mut out = DeviceMatrix::alloc_inf(&d, 3, 120).unwrap();
        mssp_kernel(&mut d, s, &g, &sources, &mut out, MsspOptions::new(25));
        for (i, &src) in sources.iter().enumerate() {
            assert_eq!(
                &out.as_slice()[i * 120..(i + 1) * 120],
                &dijkstra_sssp(&g, src)[..],
                "source {src}"
            );
        }
    }

    #[test]
    fn dynamic_parallelism_preserves_results() {
        let g = rmat(
            256,
            4096,
            RmatParams::scale_free(),
            WeightRange::default(),
            5,
        );
        let sources: Vec<u32> = (0..16).collect();
        let mut d1 = dev();
        let mut d2 = dev();
        let s = d1.default_stream();
        let mut out1 = DeviceMatrix::alloc_inf(&d1, 16, 256).unwrap();
        let mut out2 = DeviceMatrix::alloc_inf(&d2, 16, 256).unwrap();
        let base = MsspOptions::new(25);
        let dp = MsspOptions {
            dynamic_parallelism: true,
            heavy_degree_threshold: 16,
            ..base
        };
        mssp_kernel(&mut d1, s, &g, &sources, &mut out1, base);
        let s2 = d2.default_stream();
        mssp_kernel(&mut d2, s2, &g, &sources, &mut out2, dp);
        assert_eq!(out1.as_slice(), out2.as_slice());
    }

    #[test]
    fn small_batches_run_at_low_occupancy() {
        // Same total work split into small batches must take longer than
        // one saturating batch, because each small launch under-fills the
        // device.
        let g = gnp(400, 0.03, WeightRange::default(), 6);
        let all: Vec<u32> = (0..400).collect();
        let run = |chunks: usize| {
            let mut d = dev();
            let s = d.default_stream();
            for chunk in all.chunks(chunks) {
                let mut out = DeviceMatrix::alloc_inf(&d, chunk.len(), 400).unwrap();
                mssp_kernel(&mut d, s, &g, chunk, &mut out, MsspOptions::new(25));
            }
            d.synchronize().seconds()
        };
        let small = run(8); // far below saturating_blocks = 160
        let large = run(400);
        assert!(small > 2.0 * large, "small {small} vs large {large}");
    }

    #[test]
    fn dynamic_parallelism_helps_hubby_graphs_at_small_batch() {
        // Scale-free graph, batch of 8 (≪ saturating blocks): offloading
        // hub edges to full-occupancy children should beat the plain
        // kernel despite the child-launch overheads.
        let g = rmat(
            2048,
            65536,
            RmatParams::scale_free(),
            WeightRange::default(),
            11,
        );
        let sources: Vec<u32> = (0..8).collect();
        let run = |dynamic: bool| {
            let mut d = dev();
            let s = d.default_stream();
            let mut out = DeviceMatrix::alloc_inf(&d, 8, 2048).unwrap();
            let opts = MsspOptions {
                dynamic_parallelism: dynamic,
                heavy_degree_threshold: 64,
                ..MsspOptions::new(25)
            };
            let outcome = mssp_kernel(&mut d, s, &g, &sources, &mut out, opts);
            (d.synchronize().seconds(), outcome)
        };
        let (plain, _) = run(false);
        let (dynpar, outcome) = run(true);
        assert!(outcome.child_launches > 0);
        assert!(
            dynpar < plain,
            "dynamic parallelism {dynpar} should beat plain {plain}"
        );
    }

    #[test]
    fn exec_backends_bit_identical_with_parents() {
        let g = gnp(150, 0.05, WeightRange::default(), 13);
        let sources: Vec<u32> = vec![0, 7, 77, 149];
        let run = |exec: ExecBackend| {
            let mut d = dev();
            let s = d.default_stream();
            let mut out = DeviceMatrix::alloc_inf(&d, 4, 150).unwrap();
            let mut parents = DeviceMatrix::alloc_inf(&d, 4, 150).unwrap();
            let opts = MsspOptions {
                exec,
                ..MsspOptions::new(25)
            };
            let outcome =
                mssp_kernel_with_parents(&mut d, s, &g, &sources, &mut out, &mut parents, opts);
            (
                out.as_slice().to_vec(),
                parents.as_slice().to_vec(),
                outcome.stats.total_relaxations(),
                d.synchronize().seconds(),
            )
        };
        let scalar = run(ExecBackend::Scalar);
        for threads in [1usize, 3] {
            let fast = run(ExecBackend::Parallel {
                threads: Some(threads),
            });
            assert_eq!(fast, scalar, "parallel, {threads} threads");
            let simd = run(ExecBackend::Simd {
                threads: Some(threads),
            });
            assert_eq!(simd, scalar, "simd, {threads} threads");
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let g = gnp(10, 0.2, WeightRange::default(), 1);
        let mut d = dev();
        let s = d.default_stream();
        let mut out = DeviceMatrix::alloc_inf(&d, 0, 10).unwrap();
        let outcome = mssp_kernel(&mut d, s, &g, &[], &mut out, MsspOptions::new(5));
        assert_eq!(outcome.stats.total_relaxations(), 0);
        assert_eq!(d.elapsed().seconds(), 0.0);
    }
}
