//! In-device blocked Floyd-Warshall.
//!
//! Runs full APSP over a square [`DeviceMatrix`] that fits on the device —
//! used for Stage 1 diagonal blocks of the out-of-core Floyd-Warshall, the
//! per-component blocks of the boundary algorithm (its dist₂) and the
//! boundary graph itself (dist₃).
//!
//! The computation executes on the host via the shared blocked kernel of
//! `apsp-cpu` (bit-exact with the CPU reference); the device is charged
//! the per-stage kernel launches and roofline costs of the tiled GPU
//! implementation [20].

use crate::minplus::{minplus_cost, minplus_launch};
use crate::model::THREADS_PER_BLOCK;
use apsp_cpu::blocked_fw::blocked_floyd_warshall_exec;
use apsp_cpu::{DistMatrix, ExecBackend};
use apsp_gpu_sim::{GpuDevice, KernelCost, LaunchConfig, StreamId};

use crate::matrix::DeviceMatrix;

/// Device tile side for the in-device blocked FW (limited by shared
/// memory on real hardware).
pub const FW_TILE: usize = 64;

/// Run APSP over the whole square matrix `m` in device memory, charging
/// the kernel schedule of the blocked GPU formulation: per round, one
/// diagonal-tile kernel, two pivot-panel kernels, one remainder kernel.
/// Runs under the default execution backend; see [`fw_device_exec`].
pub fn fw_device(dev: &mut GpuDevice, stream: StreamId, m: &mut DeviceMatrix) {
    fw_device_exec(dev, stream, m, ExecBackend::default());
}

/// [`fw_device`] under an explicit execution backend. The backend only
/// changes host wall-clock (band-parallel branchless tiles vs. the
/// scalar reference); results and charged device time are identical.
pub fn fw_device_exec(
    dev: &mut GpuDevice,
    stream: StreamId,
    m: &mut DeviceMatrix,
    exec: ExecBackend,
) {
    assert_eq!(m.rows(), m.cols(), "Floyd-Warshall needs a square matrix");
    let n = m.rows();
    if n == 0 {
        return;
    }
    // Host-side exact computation.
    let mut host = DistMatrix::from_raw(n, m.as_slice().to_vec());
    blocked_floyd_warshall_exec(&mut host, FW_TILE, exec);
    m.as_mut_slice().copy_from_slice(host.as_slice());

    // Device-time accounting.
    let num_b = n.div_ceil(FW_TILE);
    let b = FW_TILE.min(n);
    for _round in 0..num_b {
        // Stage 1: diagonal tile (b³ work, one block).
        dev.launch(
            stream,
            "fw_diag",
            LaunchConfig::new(1, THREADS_PER_BLOCK),
            KernelCost::regular((b * b * b) as f64, (8 * b * b) as f64),
        );
        if num_b > 1 {
            // Stage 2: pivot row + pivot column panels.
            let panel = (num_b - 1) * b;
            dev.launch(
                stream,
                "fw_panels",
                minplus_launch(b, panel.max(1)),
                minplus_cost(b, b, panel.max(1)),
            );
            dev.launch(
                stream,
                "fw_panels",
                minplus_launch(panel.max(1), b),
                minplus_cost(panel.max(1), b, b),
            );
            // Stage 3: remainder.
            dev.launch(
                stream,
                "fw_remainder",
                minplus_launch(panel, panel),
                minplus_cost(panel, b, panel),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_cpu::bgl_plus_apsp;
    use apsp_gpu_sim::DeviceProfile;
    use apsp_graph::generators::{gnp, WeightRange};
    use apsp_graph::INF;

    fn dev() -> GpuDevice {
        GpuDevice::new(DeviceProfile::v100())
    }

    fn upload_graph(d: &GpuDevice, g: &apsp_graph::CsrGraph) -> DeviceMatrix {
        let host = DistMatrix::from_graph(g);
        let n = g.num_vertices();
        let mut m = DeviceMatrix::alloc(d, n, n).unwrap();
        m.as_mut_slice().copy_from_slice(host.as_slice());
        m
    }

    #[test]
    fn matches_cpu_reference() {
        let g = gnp(90, 0.06, WeightRange::default(), 17);
        let mut d = dev();
        let s = d.default_stream();
        let mut m = upload_graph(&d, &g);
        fw_device(&mut d, s, &mut m);
        let reference = bgl_plus_apsp(&g);
        assert_eq!(m.as_slice(), reference.as_slice());
    }

    #[test]
    fn ragged_sizes() {
        // n not a multiple of the tile side.
        let g = gnp(FW_TILE + 7, 0.1, WeightRange::default(), 3);
        let mut d = dev();
        let s = d.default_stream();
        let mut m = upload_graph(&d, &g);
        fw_device(&mut d, s, &mut m);
        assert_eq!(m.as_slice(), bgl_plus_apsp(&g).as_slice());
    }

    #[test]
    fn exec_backends_bit_identical_on_device_fw() {
        // Ragged n so the simd backend exercises both the register tiles
        // and the scalar-equivalent tails inside stage 3.
        let g = gnp(FW_TILE + 29, 0.08, WeightRange::default(), 23);
        let run = |exec: ExecBackend| {
            let mut d = dev();
            let s = d.default_stream();
            let mut m = upload_graph(&d, &g);
            fw_device_exec(&mut d, s, &mut m, exec);
            (m.as_slice().to_vec(), d.synchronize().seconds())
        };
        let scalar = run(ExecBackend::Scalar);
        for exec in [
            ExecBackend::Parallel { threads: Some(2) },
            ExecBackend::Simd { threads: Some(1) },
            ExecBackend::Simd { threads: Some(2) },
        ] {
            assert_eq!(run(exec), scalar, "{exec}");
        }
    }

    #[test]
    fn charged_time_bounded_below_by_flops_and_grows_superquadratically() {
        let time_for = |n: usize| {
            let mut d = dev();
            let s = d.default_stream();
            let mut m = DeviceMatrix::alloc(&d, n, n).unwrap();
            fw_device(&mut d, s, &mut m);
            d.synchronize().seconds()
        };
        let t512 = time_for(512);
        let t1024 = time_for(1024);
        // The n³ work at the profile's peak rate is a hard lower bound.
        let flop_floor = 1024f64.powi(3) / DeviceProfile::v100().compute_ops_per_sec;
        assert!(t1024 >= flop_floor, "t = {t1024}, floor = {flop_floor}");
        // At these sizes per-round launch overheads still matter (as on a
        // real GPU), but growth must already exceed the quadratic round
        // structure and stay below strict cubic.
        let ratio = t1024 / t512;
        assert!((2.2..9.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn empty_matrix_is_noop() {
        let mut d = dev();
        let s = d.default_stream();
        let mut m = DeviceMatrix::alloc(&d, 0, 0).unwrap();
        fw_device(&mut d, s, &mut m);
        assert_eq!(d.elapsed().seconds(), 0.0);
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let mut d = dev();
        let s = d.default_stream();
        let mut m = DeviceMatrix::alloc(&d, 4, 4).unwrap();
        m.set(0, 1, 3); // only edge
        fw_device(&mut d, s, &mut m);
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(1, 0), INF);
        assert_eq!(m.get(2, 3), INF);
    }
}
