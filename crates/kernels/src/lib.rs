//! Device kernels for the GPU simulator.
//!
//! Each kernel here is the simulated-device analog of a CUDA kernel in the
//! paper's implementation: it performs the real computation on host-backed
//! [`apsp_gpu_sim::DeviceBuffer`]s (bit-exact, testable against the CPU
//! baselines) and charges the device timeline a cost derived from the
//! *actual work performed* — so simulated time responds to graph structure
//! the way the paper's measurements do.
//!
//! * [`matrix::DeviceMatrix`] — a dense `rows × cols` distance matrix in
//!   device memory with H2D/D2H panel transfers,
//! * [`minplus`] — shared-memory-tiled min-plus matrix multiply
//!   (the paper's Stage 2/3 and boundary-algorithm workhorse),
//! * [`fw_block`] — in-device blocked Floyd-Warshall for tiles that fit
//!   on the device (Stage 1, component blocks, boundary graph),
//! * [`nearfar`] — the Near-Far SSSP of Davidson et al. with work
//!   counters,
//! * [`mssp`] — the batched multi-source SSSP kernel of the paper's
//!   Algorithm 2, one SSSP per thread block, with the optional
//!   dynamic-parallelism path for high-out-degree vertices.

pub mod bellman_ford;
pub mod fw_block;
pub mod matrix;
pub mod minplus;
pub mod mssp;
pub mod nearfar;

pub use matrix::DeviceMatrix;
pub use mssp::{MsspOptions, MsspOutcome};
pub use nearfar::{near_far_sssp, NearFarStats};

/// Modeling constants shared by the kernels.
pub mod model {
    /// Shared-memory tile side used by the min-plus multiply (the paper
    /// cites the classic tiled formulation); determines modeled DRAM
    /// traffic.
    pub const MINPLUS_TILE: usize = 32;

    /// Modeled scalar operations per edge relaxation in the Near-Far
    /// kernel (distance update via `atomicMin`, queue bookkeeping).
    ///
    /// Together with [`FRONTIER_IRREGULARITY`] this prices one relaxation
    /// at 288 op-equivalents, i.e. ≈ 4.9 G relaxations/s at the V100
    /// anchor — the effective SSSP edge throughput class real V100
    /// frontier kernels reach, and the value that reproduces the paper's
    /// Fig 3 band (Johnson 2.23–2.79× over BGL-Plus) given the BGL model.
    pub const OPS_PER_RELAXATION: f64 = 48.0;

    /// Modeled bytes touched per relaxation (CSR entry, dist reads/writes,
    /// queue slots).
    pub const BYTES_PER_RELAXATION: f64 = 24.0;

    /// Irregularity divisor for frontier-driven kernels (divergent warps,
    /// uncoalesced loads, atomic contention) relative to dense kernels.
    pub const FRONTIER_IRREGULARITY: f64 = 6.0;

    /// Threads per block used by all kernels' launch configurations.
    pub const THREADS_PER_BLOCK: u32 = 256;

    // The per-iteration latency floor of frontier loops lives on the
    // device profile (`DeviceProfile::frontier_iter_floor`) because it is
    // hardware-dependent and participates in reproduction scaling.
}
