//! End-to-end tour of the conformance harness: build the seeded corpus,
//! run the full differential matrix on one case, then push two fault
//! plans through each algorithm and print how it coped.
//!
//! ```text
//! cargo run -p apsp-conformance --example demo
//! ```

use apsp_conformance::{
    all_variants, run_case, run_under_faults, Case, Corpus, Family, Fault, FaultPlan,
    FaultRunOutcome, RunnerConfig,
};
use apsp_core::options::Algorithm;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE_u64);
    let cfg = RunnerConfig::default();

    // ---- 1. The corpus is a pure function of its seed.
    let corpus = Corpus::standard(seed);
    println!("corpus seed {seed:#x}: {} cases", corpus.cases.len());
    for case in &corpus.cases {
        println!(
            "  {:<28} n={:<4} m={}",
            case.name,
            case.graph.num_vertices(),
            case.graph.num_edges()
        );
    }

    // ---- 2. Differential sweep: every variant against the CPU oracle.
    println!(
        "\ndifferential matrix ({} variants + in-core baseline per case):",
        all_variants().len()
    );
    for case in &corpus.cases {
        let report = run_case(case, &cfg).expect("case must run");
        let verdict = if report.divergences.is_empty() {
            "agree".to_string()
        } else {
            format!("{} DIVERGENCES", report.divergences.len())
        };
        println!(
            "  {:<28} {} runs compared: {}",
            case.name, report.runs_compared, verdict
        );
        for d in &report.divergences {
            println!("    {d}");
        }
    }

    // ---- 3. Fault injection: seeded plans against every algorithm.
    let case = Case::generate(Family::ErdosRenyi, 0xFA017);
    println!(
        "\nfault plans on {} (device {} KiB):",
        case.name,
        cfg.device_bytes >> 10
    );
    for plan_seed in [1u64, 2, 3] {
        let plan = FaultPlan::from_seed(plan_seed);
        println!(
            "  plan {plan_seed}: {:?} ({} kinds)",
            plan.faults,
            plan.kinds()
        );
        for alg in [
            Algorithm::FloydWarshall,
            Algorithm::Johnson,
            Algorithm::Boundary,
        ] {
            let outcome = run_under_faults(&case, alg, &plan, &cfg);
            let text = match &outcome {
                FaultRunOutcome::Exact { retries } => {
                    format!("exact (retry driver absorbed it, retries={retries})")
                }
                FaultRunOutcome::FailedThenRecovered { kind } => {
                    format!("typed {kind:?} failure, store uncorrupted, re-run exact")
                }
                FaultRunOutcome::Corrupted { detail } => format!("CORRUPTED: {detail}"),
            };
            println!("    {alg:<14} -> {text}");
            assert!(outcome.is_acceptable(), "corruption under plan {plan_seed}");
        }
    }

    // ---- 4. A pure alloc-fault plan exercises the graceful-degradation
    // path specifically: all three algorithms must absorb it and stay
    // exact (FW halves its block, Johnson its batch, boundary retries
    // then halves its component count).
    let alloc_only = FaultPlan {
        seed: 0,
        faults: vec![Fault::AllocFail { kth: 1 }],
    };
    println!("\nalloc-only plan (first device allocation fails):");
    for alg in [
        Algorithm::FloydWarshall,
        Algorithm::Johnson,
        Algorithm::Boundary,
    ] {
        match run_under_faults(&case, alg, &alloc_only, &cfg) {
            FaultRunOutcome::Exact { retries } => {
                println!("    {alg:<14} -> exact, retries={retries}");
                assert!(retries >= 1, "the fault must actually have fired");
            }
            other => panic!("{alg}: expected graceful absorption, got {other:?}"),
        }
    }
    println!("\nall outcomes acceptable");
}
