//! The runtime-supervision matrix: every algorithm × {Memory, Disk}
//! through the stall→fallback, cancel→resume and deadline-abort
//! harnesses, plus the structural-fallback case that needs no fault
//! injection at all.
//!
//! CI's `supervision` job runs this file on every push; nightly widens
//! `APSP_STALL_POINTS` to sweep more injected hang positions per cell
//! around the same fixed seed. A failure prints the seed that reproduces
//! it in `run_stall_fallback`.

use apsp_conformance::{
    run_cancel_resume, run_deadline_abort, run_stall_fallback, Case, Family, RunnerConfig,
};
use apsp_core::options::Algorithm;
use apsp_core::{apsp, ApspErrorKind, ApspOptions, SupervisionOptions};
use apsp_cpu::bgl_plus_apsp;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::FloydWarshall,
    Algorithm::Johnson,
    Algorithm::Boundary,
];

/// The fixed supervision-matrix seed; per-cell draws derive from it.
const STALL_SEED: u64 = 0x57A1;

fn stall_points() -> u64 {
    std::env::var("APSP_STALL_POINTS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1)
}

#[test]
fn stalled_runs_fall_back_to_a_bit_identical_result() {
    let case = Case::generate(Family::ErdosRenyi, 0x5E1F1);
    let cfg = RunnerConfig::default();
    let points = stall_points();
    for algorithm in ALGORITHMS {
        for disk in [false, true] {
            for point in 0..points {
                let seed = STALL_SEED
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(point);
                let report = run_stall_fallback(&case, algorithm, disk, seed, &cfg).unwrap_or_else(
                    |detail| {
                        panic!(
                            "{algorithm:?}/{} stall point {point} (seed {seed:#x}): {detail}",
                            if disk { "disk" } else { "memory" }
                        )
                    },
                );
                eprintln!(
                    "{algorithm:?}/{}: {report}",
                    if disk { "disk" } else { "memory" }
                );
            }
        }
    }
}

#[test]
fn stall_event_sequences_replay_deterministically() {
    let case = Case::generate(Family::ErdosRenyi, 0x5E1F2);
    let cfg = RunnerConfig::default();
    for algorithm in ALGORITHMS {
        let a = run_stall_fallback(&case, algorithm, false, STALL_SEED, &cfg)
            .unwrap_or_else(|d| panic!("{algorithm:?} first run: {d}"));
        let b = run_stall_fallback(&case, algorithm, false, STALL_SEED, &cfg)
            .unwrap_or_else(|d| panic!("{algorithm:?} second run: {d}"));
        assert_eq!(a, b, "{algorithm:?}: same seed, different event sequence");
    }
}

#[test]
fn cancelled_runs_resume_exactly() {
    let case = Case::generate(Family::ErdosRenyi, 0x5E1F3);
    let cfg = RunnerConfig::default();
    for algorithm in ALGORITHMS {
        for disk in [false, true] {
            let report = run_cancel_resume(&case, algorithm, disk, STALL_SEED, &cfg)
                .unwrap_or_else(|detail| {
                    panic!(
                        "{algorithm:?}/{}: {detail}",
                        if disk { "disk" } else { "memory" }
                    )
                });
            eprintln!(
                "{algorithm:?}/{}: {report}",
                if disk { "disk" } else { "memory" }
            );
        }
    }
}

#[test]
fn expired_deadlines_abort_typed() {
    let case = Case::generate(Family::ErdosRenyi, 0x5E1F4);
    let cfg = RunnerConfig::default();
    for algorithm in ALGORITHMS {
        run_deadline_abort(&case, algorithm, false, &cfg)
            .unwrap_or_else(|detail| panic!("{algorithm:?}: {detail}"));
    }
}

#[test]
fn pathological_partition_falls_back_without_fault_injection() {
    // One giant component plus dust on a device too small for the
    // component's working set at any partition count: the boundary
    // algorithm fails structurally, and only the fallback chain can
    // finish the run. No fault is injected anywhere.
    let case = Case::generate(Family::PathologicalPartition, 0x9A7B);
    let g = &case.graph;
    let reference = bgl_plus_apsp(g);
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(16 << 10));
    let opts = ApspOptions {
        algorithm: Some(Algorithm::Boundary),
        supervision: SupervisionOptions {
            fallback: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = apsp(g, &mut dev, &opts).expect("the fallback chain must finish the run");
    assert_eq!(
        result.fallback_events.len(),
        1,
        "{:?}",
        result.fallback_events
    );
    let fb = &result.fallback_events[0];
    assert_eq!(fb.from, Algorithm::Boundary);
    assert!(
        matches!(
            fb.error_kind,
            ApspErrorKind::DeviceTooSmall | ApspErrorKind::OutOfDeviceMemory
        ),
        "{fb:?}"
    );
    assert_ne!(result.algorithm, Algorithm::Boundary);
    assert_eq!(result.store.to_dist_matrix().unwrap(), reference);

    // Without fallback the same run is a typed hard error.
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(16 << 10));
    let opts = ApspOptions {
        algorithm: Some(Algorithm::Boundary),
        ..Default::default()
    };
    let err = apsp(g, &mut dev, &opts).expect_err("boundary alone must fail on this device");
    assert!(
        matches!(
            err.kind(),
            ApspErrorKind::DeviceTooSmall | ApspErrorKind::OutOfDeviceMemory
        ),
        "{err}"
    );
}
