//! The selector-calibration conformance matrix.
//!
//! The calibration layer's contract has three legs, and this file pins
//! all of them on two device profiles:
//!
//! 1. **Convergence** — replaying the same graph with a persisted
//!    calibration store, the selected algorithm's relative prediction
//!    error `|predicted − realized| / realized` is non-increasing round
//!    over round, its running mean strictly decreases, and the sequence
//!    ends within 0.5 of the realized time (the seed constants alone
//!    start far outside that).
//! 2. **Selection quality** — after the replay, the selector's choice
//!    coincides with the algorithm that is realized-fastest on that
//!    graph + profile (measured by forcing each algorithm in turn).
//! 3. **Neutrality** — calibration never perturbs a run it rides along
//!    with: every round's matrix is bit-identical to an uncalibrated
//!    baseline, the simulated clock matches, and the scalar/parallel
//!    backends agree bit-for-bit with calibration on.
//!
//! The store itself is exercised separately: distinct profiles get
//! distinct store files, and a forced-algorithm run (the `bench_kernels`
//! shape) must cost *every* structurally-eligible candidate — the
//! regression pin for the boundary model's `predicted_s: null` gap.
//!
//! `APSP_CALIBRATION_RUNS` widens the replay for the nightly CI job.

use apsp_conformance::calibration::replay;
use apsp_core::options::{Algorithm, ExecBackend};
use apsp_core::{apsp, ApspOptions, CalibrationStore};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{gnp, WeightRange};
use apsp_graph::CsrGraph;
use std::path::PathBuf;

/// A dense-class graph the selector has a real decision to make on:
/// the same shape `bench_kernels` runs.
fn replay_graph() -> CsrGraph {
    gnp(96, 0.06, WeightRange::default(), 0xBE7C)
}

/// The two paper profiles, shrunk so the out-of-core paths engage.
fn profiles() -> [DeviceProfile; 2] {
    [
        DeviceProfile::v100().with_memory_bytes(256 << 10),
        DeviceProfile::k80().with_memory_bytes(256 << 10),
    ]
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("apsp_conformance_calibration")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn replay_rounds() -> usize {
    std::env::var("APSP_CALIBRATION_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(5)
}

#[test]
fn replayed_predictions_converge_onto_realized_times() {
    let g = replay_graph();
    let rounds = replay_rounds();
    for profile in profiles() {
        let dir = scratch_dir(&format!("converge-{}", profile.name));
        let report = replay(&profile, &g, &dir, rounds);
        eprintln!("{}", report.render());
        assert_eq!(report.rounds.len(), rounds);

        // Leg 1: per-round error never grows, the running mean strictly
        // shrinks, and the final mean lands within 0.5 of realized.
        for pair in report.rounds.windows(2) {
            assert!(
                pair[1].rel_error() <= pair[0].rel_error() + 1e-12,
                "{}: round {} error {} grew over round {} error {}",
                profile.name,
                pair[1].round,
                pair[1].rel_error(),
                pair[0].round,
                pair[0].rel_error()
            );
        }
        for k in 1..rounds {
            assert!(
                report.mean_rel_error_through(k) < report.mean_rel_error_through(k - 1),
                "{}: running mean stalled at round {k}",
                profile.name
            );
        }
        let final_mean = report.mean_rel_error_through(rounds - 1);
        assert!(
            final_mean <= 0.5,
            "{}: final mean relative error {final_mean} > 0.5",
            profile.name
        );
        // The convergence is the refit's doing: the seed constants alone
        // stay at their round-1 error for the whole sequence.
        let seed_err = {
            let r = &report.rounds[rounds - 1];
            (r.seed_predicted_s - r.realized_s).abs() / r.realized_s
        };
        assert!(
            report.rounds[rounds - 1].rel_error() < seed_err,
            "{}: refit no better than seed constants",
            profile.name
        );

        // Leg 2: the calibrated selector ends up agreeing with reality.
        assert_eq!(
            report.final_selected(),
            report.realized_fastest,
            "{}: final selection disagrees with the realized-fastest algorithm",
            profile.name
        );

        // Leg 3: no round's matrix may deviate from the uncalibrated
        // baseline.
        for r in &report.rounds {
            assert!(
                r.matrix_identical,
                "{}: round {} matrix diverged from the uncalibrated run",
                profile.name, r.round
            );
        }

        // The store grew one observation per round and survives reopen.
        let store = CalibrationStore::open(&dir, &profile).unwrap();
        assert_eq!(store.runs(), rounds as u64);
        assert!(report.store_path.is_file());
        assert_eq!(store.path(), report.store_path.as_path());
    }
}

#[test]
fn profiles_get_distinct_store_files() {
    let g = replay_graph();
    let dir = scratch_dir("distinct-stores");
    let [v100, k80] = profiles();
    for profile in [&v100, &k80] {
        let mut dev = GpuDevice::new(profile.clone());
        let opts = ApspOptions {
            calibration_dir: Some(dir.clone()),
            ..Default::default()
        };
        apsp(&g, &mut dev, &opts).unwrap();
    }
    let v100_store = CalibrationStore::open(&dir, &v100).unwrap();
    let k80_store = CalibrationStore::open(&dir, &k80).unwrap();
    assert_ne!(v100_store.path(), k80_store.path());
    assert_eq!(v100_store.runs(), 1);
    assert_eq!(k80_store.runs(), 1);
    // Same name, different constants ⇒ still a different file: the key
    // is structural, not nominal.
    let bigger = v100.with_memory_bytes(512 << 10);
    assert_ne!(
        CalibrationStore::fresh(&dir, &v100).path(),
        CalibrationStore::fresh(&dir, &bigger).path()
    );
}

#[test]
fn calibration_is_inert_within_a_single_run_across_backends() {
    // The satellite neutrality gate: with a calibration store in play,
    // matrices, clocks, and selections must match the calibration-off
    // run — for both host backends, which must also agree bit-for-bit
    // with each other (the backend-parity contract, now crossed with
    // calibration).
    let g = replay_graph();
    let [v100, _] = profiles();
    let mut matrices = Vec::new();
    for scalar in [true, false] {
        let exec = if scalar {
            ExecBackend::scalar()
        } else {
            ExecBackend::Parallel { threads: Some(2) }
        };
        let run = |calibration_dir: Option<PathBuf>| {
            let mut dev = GpuDevice::new(v100.clone());
            let opts = ApspOptions {
                exec,
                telemetry: true,
                calibration_dir,
                ..Default::default()
            };
            apsp(&g, &mut dev, &opts).unwrap()
        };
        let off = run(None);
        let tag = if scalar { "scalar" } else { "parallel" };
        let on = run(Some(scratch_dir(&format!("neutral-{tag}"))));
        assert_eq!(off.algorithm, on.algorithm, "{tag}: selection changed");
        assert_eq!(off.sim_seconds, on.sim_seconds, "{tag}: clock changed");
        let (m_off, m_on) = (
            off.store.to_dist_matrix().unwrap(),
            on.store.to_dist_matrix().unwrap(),
        );
        assert_eq!(m_off, m_on, "{tag}: calibration perturbed the matrix");
        matrices.push(m_on);
    }
    assert_eq!(
        matrices[0], matrices[1],
        "backends disagree with calibration on"
    );
}

#[test]
fn forced_runs_cost_every_structurally_eligible_candidate() {
    // Regression pin for the `bench_kernels` artifact gap: a forced
    // boundary run on the dense benchmark graph used to emit
    // `predicted_s: null` for the boundary candidate (density-filtered
    // candidates were never costed). Every candidate that is not masked
    // and not infeasible must now carry a finite prediction — and its
    // seed twin — in the telemetry of every forced run.
    let g = replay_graph();
    let [v100, _] = profiles();
    for algorithm in [
        Algorithm::FloydWarshall,
        Algorithm::Johnson,
        Algorithm::Boundary,
    ] {
        let mut dev = GpuDevice::new(v100.clone());
        let opts = ApspOptions {
            algorithm: Some(algorithm),
            telemetry: true,
            ..Default::default()
        };
        let result = apsp(&g, &mut dev, &opts).unwrap();
        let report = result.telemetry.as_ref().unwrap();
        for rec in &report.calibration {
            assert!(
                rec.predicted_s.is_some_and(f64::is_finite),
                "forced {algorithm:?}: candidate {} has no finite prediction: {rec:?}",
                rec.algorithm
            );
            assert!(
                rec.seed_predicted_s.is_some_and(f64::is_finite),
                "forced {algorithm:?}: candidate {} has no seed prediction: {rec:?}",
                rec.algorithm
            );
        }
    }
}
