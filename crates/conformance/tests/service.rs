//! Tier-2 serving conformance: the chaos soak (ISSUE 8 acceptance) plus
//! the queued-cancel and cache-integrity satellites.
//!
//! The CI `service-soak` job runs this suite; nightly widens the job
//! count via `APSP_SERVICE_JOBS`.

use apsp_conformance::service::{run_chaos, ChaosConfig, Terminal};
use apsp_conformance::{run_corrupt_cache_check, run_queued_cancel_residue};
use apsp_core::service::trace::TraceConfig;

/// Job count for the soak: `APSP_SERVICE_JOBS` (nightly widens it),
/// floored at the acceptance criterion's ≥ 8 concurrent jobs.
fn jobs_from_env() -> usize {
    std::env::var("APSP_SERVICE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
        .max(8)
}

fn soak_config(tag: &str) -> ChaosConfig {
    ChaosConfig {
        trace: TraceConfig {
            jobs: jobs_from_env(),
            ..TraceConfig::default()
        },
        scratch_dir: std::env::temp_dir().join(format!("apsp-service-soak-{tag}")),
        ..ChaosConfig::default()
    }
}

#[test]
fn chaos_soak_never_wrong_never_hung_and_deterministic() {
    let cfg = soak_config("main");
    let a = run_chaos(&cfg).expect("chaos contract must hold");
    assert!(a.verdicts.len() >= 8, "soak must drive ≥ 8 concurrent jobs");
    assert!(
        a.verdicts
            .iter()
            .any(|v| matches!(v.terminal, Terminal::Completed { .. })),
        "a soak where nothing completes proves nothing: {a}"
    );
    // Re-running the identical config must replay the identical verdict
    // sequence, counters, and simulated clock — the determinism half of
    // the acceptance criterion.
    let b = run_chaos(&cfg).expect("repeat of the same soak must hold");
    assert_eq!(a, b, "same seed must replay the same soak");
    println!("soak: {a}");
}

#[test]
fn overload_rejections_are_typed_with_retry_hints() {
    // Squeeze the queue far below the job count: the soak must now turn
    // jobs away, and run_chaos fails internally if any rejection is
    // untyped or hint-less.
    let cfg = ChaosConfig {
        queue_capacity: 2,
        scratch_dir: std::env::temp_dir().join("apsp-service-soak-overload"),
        ..soak_config("overload")
    };
    let report = run_chaos(&cfg).expect("overload soak must hold");
    let turned_away: u64 = report.counters.rejected_queue_full + report.counters.rejected_busy;
    assert!(
        turned_away > 0,
        "a 2-deep queue under {} jobs must reject someone: {report}",
        report.verdicts.len()
    );
    // Degradation, not denial: the service still completed work while
    // saturated.
    assert!(report.counters.completed > 0, "{report}");
}

#[test]
fn queued_cancel_is_immediate_residue_free_and_isolated() {
    let dir = std::env::temp_dir().join("apsp-service-queued-cancel");
    run_queued_cancel_residue(&dir).expect("queued-cancel contract must hold");
}

#[test]
fn corrupt_cache_entries_are_evicted_not_served() {
    let dir = std::env::temp_dir().join("apsp-service-corrupt-cache");
    run_corrupt_cache_check(&dir).expect("cache-integrity contract must hold");
}
