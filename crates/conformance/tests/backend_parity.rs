//! Backend parity: the `Scalar`, `Parallel`, and `Simd` execution
//! backends must produce bit-identical matrices everywhere they are
//! offered.
//!
//! The optimized backends' claim is not "close enough" but *exact*: the
//! branchless lowering computes the same `min`/saturating-add lattice
//! operations, the register-tiled SIMD micro-kernel clamps into the
//! same lattice before its vector adds, and every band split is placed
//! on a loop whose iterations are independent. These tests hold that
//! claim against the full algorithm × storage matrix, over multiple
//! corpus families, at several thread counts — and through a
//! kill–resume cycle, where a backend-dependent intermediate would
//! surface as a divergent resumed matrix.

use apsp_conformance::{run_kill_resume, Case, CrashCellOptions, Family, RunnerConfig};
use apsp_core::options::{Algorithm, ExecBackend};
use apsp_core::{apsp, ApspOptions, StorageBackend};
use apsp_cpu::DistMatrix;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::FloydWarshall,
    Algorithm::Johnson,
    Algorithm::Boundary,
];

fn run_with(case: &Case, algorithm: Algorithm, disk: bool, exec: ExecBackend) -> DistMatrix {
    let cfg = RunnerConfig::default();
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: if disk {
            StorageBackend::Disk(cfg.scratch_dir.clone())
        } else {
            StorageBackend::Memory
        },
        exec,
        ..Default::default()
    };
    let result = apsp(&case.graph, &mut dev, &opts)
        .unwrap_or_else(|e| panic!("{algorithm:?}/{exec} failed on {}: {e}", case.name));
    result
        .store
        .to_dist_matrix()
        .unwrap_or_else(|e| panic!("store unreadable after {algorithm:?}/{exec}: {e}"))
}

/// Panic with the first diverging cell instead of dumping two n² Debug
/// matrices.
fn assert_bitwise(expected: &DistMatrix, got: &DistMatrix, label: &str) {
    if expected == got {
        return;
    }
    let n = expected.n();
    let idx = (0..n * n)
        .find(|&i| expected.as_slice()[i] != got.as_slice()[i])
        .unwrap();
    panic!(
        "{label}: cell ({}, {}) = {}, scalar backend got {}",
        idx / n,
        idx % n,
        got.as_slice()[idx],
        expected.as_slice()[idx]
    );
}

#[test]
fn optimized_backends_agree_bitwise_across_the_matrix() {
    let cases = [
        Case::generate(Family::ErdosRenyi, 0xBACC),
        Case::generate(Family::Grid, 0xBACC),
        Case::generate(Family::Disconnected, 0xBACC),
    ];
    // Auto-sized, single-threaded, and an odd explicit count: the band
    // boundaries land differently in each, so a band-placement bug
    // cannot hide behind one lucky split. The simd backend additionally
    // shifts every register-tile boundary as n varies across families.
    let optimized_execs = [
        ExecBackend::parallel(),
        ExecBackend::Parallel { threads: Some(1) },
        ExecBackend::Parallel { threads: Some(3) },
        ExecBackend::simd(),
        ExecBackend::Simd { threads: Some(1) },
        ExecBackend::Simd { threads: Some(3) },
    ];
    for case in &cases {
        for algorithm in ALGORITHMS {
            for disk in [false, true] {
                let scalar = run_with(case, algorithm, disk, ExecBackend::scalar());
                for exec in optimized_execs {
                    let got = run_with(case, algorithm, disk, exec);
                    assert_bitwise(
                        &scalar,
                        &got,
                        &format!(
                            "{}/{algorithm:?}/{}/{exec}",
                            case.name,
                            if disk { "disk" } else { "memory" }
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn optimized_backends_survive_kill_resume_bit_identically() {
    // `run_kill_resume` checks the interrupted-and-resumed matrix
    // bitwise against the CPU reference, so running its three-step
    // differential with each optimized backend in every per-algorithm
    // option block proves the backend through checkpoint commit,
    // crash, and replay — not just through a clean run.
    let case = Case::generate(Family::ErdosRenyi, 0x9D5E);
    for exec in [
        ExecBackend::Parallel { threads: Some(3) },
        ExecBackend::Simd { threads: Some(3) },
    ] {
        let mut cell = CrashCellOptions::default();
        cell.fw.exec = exec;
        cell.johnson.exec = exec;
        cell.boundary.exec = exec;
        // Same provisioning trick as `crash_resume`: Floyd-Warshall and
        // Johnson get a tiny device so the 90-vertex run crosses several
        // commit barriers (Johnson fits in one batch otherwise); the
        // boundary algorithm keeps the default device and gets a fixed
        // component count with per-component flushes.
        cell.boundary.num_components = Some(6);
        cell.boundary.batch_transfers = false;
        for algorithm in ALGORITHMS {
            let cfg = RunnerConfig {
                device_bytes: match algorithm {
                    Algorithm::Boundary => RunnerConfig::default().device_bytes,
                    _ => 32 << 10,
                },
                ..Default::default()
            };
            for disk in [false, true] {
                let report = run_kill_resume(&case, algorithm, disk, 0x51EE7, &cfg, &cell)
                    .unwrap_or_else(|e| {
                        panic!(
                            "kill–resume under the {exec} backend broke for {algorithm:?}/{}: {e}",
                            if disk { "disk" } else { "memory" }
                        )
                    });
                assert!(
                    report.crash_after_ops < report.total_ops,
                    "crash point must interrupt the run"
                );
            }
        }
    }
}

// Property coverage for the simd backend's two honest hazards: lattice
// saturation (paths whose tropical sums clamp at INF must clamp
// identically in the vector and scalar lowering) and ragged geometry
// (vertex counts that are not multiples of the register-tile lane
// width, so the masked tail path runs on every row). The micro-kernel
// has its own tile-level property in `apsp-cpu`; this one drives whole
// `apsp` runs so tile dispatch, panel packing, and the OOC drivers sit
// between the property and the kernel.
mod simd_properties {
    use super::*;
    use apsp_graph::generators::{gnp, WeightRange};
    use apsp_graph::INF;
    use proptest::prelude::*;

    fn run_graph(
        graph: &apsp_graph::CsrGraph,
        algorithm: Algorithm,
        exec: ExecBackend,
    ) -> DistMatrix {
        let cfg = RunnerConfig::default();
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
        let opts = ApspOptions {
            algorithm: Some(algorithm),
            storage: StorageBackend::Memory,
            exec,
            ..Default::default()
        };
        let result = apsp(graph, &mut dev, &opts)
            .unwrap_or_else(|e| panic!("{algorithm:?}/{exec} failed: {e}"));
        result
            .store
            .to_dist_matrix()
            .unwrap_or_else(|e| panic!("store unreadable after {algorithm:?}/{exec}: {e}"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Saturation boundaries: weights drawn from the top of the
        /// lattice, where any two-edge path exceeds INF and must clamp.
        /// A vector add that wrapped, or a tail lane that clamped
        /// differently from the scalar kernel, diverges bitwise here.
        #[test]
        fn simd_matches_scalar_at_saturation(
            n in 30usize..70,
            seed in 0u64..u64::MAX,
            dense in 0u32..2,
        ) {
            let p = if dense == 1 { 0.3 } else { 0.05 };
            let g = gnp(n, p, WeightRange::new(INF / 2, INF - 1), seed);
            for algorithm in ALGORITHMS {
                let scalar = run_graph(&g, algorithm, ExecBackend::scalar());
                let simd = run_graph(&g, algorithm, ExecBackend::simd());
                prop_assert_eq!(
                    scalar.as_slice(),
                    simd.as_slice(),
                    "{:?} diverged at saturation, n={}",
                    algorithm,
                    n
                );
            }
        }

        /// Ragged geometry: n avoids multiples of the SIMD lane count,
        /// so every row of every tile ends in the masked scalar tail,
        /// and the blocked drivers see partial edge tiles in both
        /// dimensions.
        #[test]
        fn simd_matches_scalar_at_non_lane_multiple_dims(
            base in 4usize..9,
            offset in 1usize..8,
            seed in 0u64..u64::MAX,
        ) {
            // 8k + r with r in 1..8 is never a multiple of 8 (or 16).
            let n = base * 8 + offset;
            let g = gnp(n, 0.1, WeightRange::default(), seed);
            for algorithm in ALGORITHMS {
                let scalar = run_graph(&g, algorithm, ExecBackend::scalar());
                let simd = run_graph(&g, algorithm, ExecBackend::simd());
                prop_assert_eq!(
                    scalar.as_slice(),
                    simd.as_slice(),
                    "{:?} diverged at ragged n={}",
                    algorithm,
                    n
                );
            }
        }
    }
}
