//! Fault-injection conformance: deterministic plans of device and disk
//! faults against every out-of-core algorithm. The contract under test:
//! an algorithm either absorbs the faults (retry driver) and produces
//! the exact matrix, or fails with a typed error leaving the store
//! uncorrupted and recoverable — never a silently wrong result.

use apsp_conformance::{Case, Family, FaultPlan, FaultRunOutcome, RunnerConfig};
use apsp_core::options::Algorithm;
use apsp_core::ApspErrorKind;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::FloydWarshall,
    Algorithm::Johnson,
    Algorithm::Boundary,
];

#[test]
fn every_algorithm_survives_seeded_fault_plans() {
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::ErdosRenyi, 0xFA017);
    for plan_seed in [1u64, 2, 3] {
        let plan = FaultPlan::from_seed(plan_seed);
        assert!(plan.kinds() >= 3, "plan {plan_seed} covers too few kinds");
        for algorithm in ALGORITHMS {
            let outcome = apsp_conformance::fault::run_under_faults(&case, algorithm, &plan, &cfg);
            match &outcome {
                FaultRunOutcome::Exact { retries } => {
                    eprintln!("plan {plan_seed} × {algorithm:?}: exact after {retries} retries");
                }
                FaultRunOutcome::FailedThenRecovered { kind } => {
                    eprintln!("plan {plan_seed} × {algorithm:?}: typed {kind:?}, recovered");
                }
                FaultRunOutcome::Corrupted { detail } => {
                    panic!("plan {plan_seed} × {algorithm:?} corrupted the store: {detail}");
                }
            }
            assert!(outcome.is_acceptable());
        }
    }
}

#[test]
fn fault_plans_reproduce_exactly_from_their_seed() {
    for seed in 0..50u64 {
        assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        assert!(FaultPlan::from_seed(seed).kinds() >= 3);
    }
}

#[test]
fn alloc_only_plan_is_absorbed_by_the_retry_drivers() {
    // A plan with just an allocation fault: every algorithm now has a
    // retry driver (boundary retries then halves its component count),
    // so all three must degrade (retries > 0) rather than fail.
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::Rmat, 0xFA117);
    // kth = 1 targets the very first device allocation, which every
    // algorithm performs regardless of how the device size shakes out.
    let plan = FaultPlan {
        seed: 0,
        faults: vec![apsp_conformance::Fault::AllocFail { kth: 1 }],
    };
    assert!(!plan.has_disk_faults());
    for algorithm in ALGORITHMS {
        match apsp_conformance::fault::run_under_faults(&case, algorithm, &plan, &cfg) {
            FaultRunOutcome::Exact { retries } => {
                assert!(retries >= 1, "{algorithm:?} should have retried")
            }
            other => panic!("{algorithm:?}: expected graceful degradation, got {other:?}"),
        }
    }
}

#[test]
fn disk_only_short_write_fails_typed_on_disk_and_recovers() {
    // One dangerous fault — a short write that leaves the store partially
    // mutated — on every algorithm. For Floyd-Warshall the ordinal lands
    // past the n init-row writes, mid-round; Johnson batches rows into
    // one positional write per batch and boundary writes per row, so
    // their first post-arm write (op 0) is already a result write.
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::Grid, 0xFA217);
    for (algorithm, op) in [
        (Algorithm::FloydWarshall, 130u64),
        (Algorithm::Johnson, 0),
        (Algorithm::Boundary, 0),
    ] {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![apsp_conformance::Fault::ShortWrite { op }],
        };
        match apsp_conformance::fault::run_under_faults(&case, algorithm, &plan, &cfg) {
            FaultRunOutcome::FailedThenRecovered { kind } => {
                assert_eq!(kind, ApspErrorKind::Storage, "{algorithm:?}")
            }
            FaultRunOutcome::Exact { .. } => {
                panic!("{algorithm:?}: the short write never fired (op ordinal too high?)")
            }
            FaultRunOutcome::Corrupted { detail } => {
                panic!("{algorithm:?} corrupted the store: {detail}")
            }
        }
    }
}
