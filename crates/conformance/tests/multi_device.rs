//! The heterogeneous-fleet conformance matrix for the sharded
//! multi-device executor.
//!
//! Three properties, each against the single-device `ooc_boundary`
//! oracle (itself verified against the CPU reference before use):
//!
//! * **bit-identity** — 1/2/4 devices × all-V100 and V100+K80 fleets ×
//!   Memory/Disk/sharded-Disk storage × all three exec backends produce
//!   the exact same matrix;
//! * **makespan monotonicity** — on a homogeneous fleet, more devices
//!   never make the simulated timeline slower (`APSP_FLEET_SIZES`
//!   widens the sweep in nightly CI);
//! * **kill–resume across fleet shapes** — a checkpointed run killed on
//!   one device count resumes bit-exactly on a different one, because
//!   the commit cursor (components done) is device-count-independent.

use apsp_conformance::{
    makespan_curve, run_multi_cell, run_multi_kill_resume, single_device_oracle, Case, Family,
    RunnerConfig, StoreKind,
};
use apsp_core::options::BoundaryOptions;
use apsp_cpu::ExecBackend;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

fn fleets() -> Vec<Vec<DeviceProfile>> {
    let v = DeviceProfile::v100;
    let k = DeviceProfile::k80;
    vec![
        vec![v()],
        vec![v(), v()],
        vec![v(), k()],
        vec![v(), v(), v(), v()],
        vec![v(), k(), v(), k()],
    ]
}

fn fleet_sizes() -> Vec<usize> {
    let spec = std::env::var("APSP_FLEET_SIZES").unwrap_or_else(|_| "1,2,4".to_string());
    let sizes: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse::<usize>().ok())
        .filter(|&c| c >= 1)
        .collect();
    assert!(
        !sizes.is_empty(),
        "APSP_FLEET_SIZES parsed to nothing: {spec:?}"
    );
    sizes
}

#[test]
fn every_fleet_shape_matches_the_single_device_oracle_bitwise() {
    let cfg = RunnerConfig::default();
    let backends = [
        ExecBackend::Scalar,
        ExecBackend::Parallel { threads: Some(2) },
        ExecBackend::Simd { threads: Some(2) },
    ];
    for case in [
        Case::generate(Family::ErdosRenyi, 0xF1EE0),
        Case::generate(Family::Grid, 0xF1EE1),
    ] {
        let oracle = single_device_oracle(&case, &BoundaryOptions::default(), &cfg)
            .unwrap_or_else(|e| panic!("{e}"));
        for fleet in fleets() {
            for store_kind in [StoreKind::Memory, StoreKind::Disk, StoreKind::DiskSharded] {
                for exec in backends {
                    let opts = BoundaryOptions {
                        exec,
                        ..Default::default()
                    };
                    let report = run_multi_cell(&case, &fleet, store_kind, &opts, &oracle, &cfg)
                        .unwrap_or_else(|e| panic!("{e}"));
                    eprintln!(
                        "{}: [{}] {store_kind}/{exec:?} makespan {:.3}s, {} stolen",
                        case.name, report.fleet, report.makespan_s, report.stolen_panels
                    );
                }
            }
        }
    }
}

#[test]
fn adding_devices_never_slows_the_simulated_makespan() {
    let cfg = RunnerConfig::default();
    let sizes = fleet_sizes();
    let case = Case::generate(Family::Rmat, 0xF1EE2);
    let curve = makespan_curve(&case, &sizes, &cfg).unwrap_or_else(|e| panic!("{e}"));
    for w in curve.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-9),
            "makespan rose when a device was added: {curve:?} at sizes {sizes:?}"
        );
    }
    eprintln!("makespan curve over {sizes:?}: {curve:?}");
}

#[test]
fn multi_device_telemetry_has_per_device_spans_and_validates_against_the_schema() {
    use apsp_core::telemetry::{parse_json, validate_jsonl, Telemetry};
    use apsp_core::{
        ooc_boundary_multi_supervised, StorageBackend, SupervisionOptions, Supervisor, TileStore,
    };

    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::Grid, 0xF1EE5);
    let mut devs: Vec<GpuDevice> = [DeviceProfile::v100(), DeviceProfile::k80()]
        .iter()
        .map(|p| GpuDevice::new(p.with_memory_bytes(cfg.device_bytes)))
        .collect();
    let mut store = TileStore::new(case.graph.num_vertices(), &StorageBackend::Memory).unwrap();
    let telemetry = Telemetry::enabled();
    let sup = Supervisor::with_telemetry(&SupervisionOptions::default(), 0.0, telemetry.clone());
    let stats = ooc_boundary_multi_supervised(
        &mut devs,
        &case.graph,
        &mut store,
        &BoundaryOptions::default(),
        &sup,
    )
    .unwrap();
    let report = telemetry
        .build_report(
            "boundary",
            "parallel",
            stats.sim_seconds,
            &devs[0].report(),
            &[],
            &sup.events(),
            0,
            0,
        )
        .unwrap();

    // Every multi phase span names its device, and both devices appear.
    let devices: Vec<Option<usize>> = report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("multi."))
        .map(|s| s.device)
        .collect();
    assert!(!devices.is_empty(), "no multi.* spans in the report");
    assert!(devices.iter().all(|d| d.is_some()));
    assert!(devices.contains(&Some(0)) && devices.contains(&Some(1)));

    let schema_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../schemas/telemetry.schema.json");
    let schema = parse_json(&std::fs::read_to_string(&schema_path).unwrap()).unwrap();
    let jsonl = report.to_jsonl();
    validate_jsonl(&jsonl, &schema)
        .unwrap_or_else(|e| panic!("multi report fails the schema: {e}"));
    assert!(
        jsonl.contains("\"device\":1"),
        "the JSONL lost the device field"
    );
}

#[test]
fn kill_resume_is_exact_across_different_fleet_shapes() {
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::ErdosRenyi, 0xF1EE3);
    let points = std::env::var("APSP_CRASH_POINTS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    for (kill_on, resume_on) in [(2usize, 4usize), (4, 1), (1, 2)] {
        for store_kind in [StoreKind::Memory, StoreKind::Disk] {
            for point in 0..points {
                let seed = 0xF1EE4u64
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(point);
                let report =
                    run_multi_kill_resume(&case, kill_on, resume_on, store_kind, seed, &cfg)
                        .unwrap_or_else(|e| {
                            panic!("{kill_on}→{resume_on} devices/{store_kind} point {point}: {e}")
                        });
                eprintln!("{kill_on}→{resume_on} devices/{store_kind}: {report}");
            }
        }
    }
}
