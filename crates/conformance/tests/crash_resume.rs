//! The kill–resume differential matrix: every checkpointed algorithm ×
//! {Memory, Disk} storage, killed at a seed-chosen store operation and
//! resumed in a fresh device/store. The resumed matrix must equal the
//! uninterrupted run's bit-for-bit, and a corrupted checkpoint must be
//! rejected with a typed error — never silently wrong distances.
//!
//! Nightly CI sets `APSP_CRASH_POINTS` to widen the number of kill
//! points per cell around the same fixed seed; a failure there prints
//! the crash seed that reproduces it in `run_kill_resume`.

use apsp_conformance::{run_kill_resume, Case, CrashCellOptions, Family, RunnerConfig};
use apsp_core::options::Algorithm;
use apsp_core::{apsp, ApspErrorKind, ApspOptions, Checkpoint, CheckpointOptions};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::FloydWarshall,
    Algorithm::Johnson,
    Algorithm::Boundary,
];

/// The fixed crash-matrix seed; per-cell kill points derive from it.
const CRASH_SEED: u64 = 0x1C1E;

fn crash_points() -> u64 {
    std::env::var("APSP_CRASH_POINTS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1)
}

#[test]
fn killed_and_resumed_runs_match_uninterrupted_runs_bitwise() {
    let case = Case::generate(Family::ErdosRenyi, 0xC8A51);
    let points = crash_points();
    for algorithm in ALGORITHMS {
        // Floyd-Warshall and Johnson get a device small enough to force
        // several commit barriers on a 90-vertex graph (Johnson fits it
        // in a single batch at the runner default, leaving nothing to
        // kill); the boundary algorithm's working set — boundary graph
        // plus a component block — needs the default device, and gets a
        // fixed component count — with transfer batching off, so every
        // component flush is a durable commit barrier instead of one
        // deferred flush at the end.
        let cfg = RunnerConfig {
            device_bytes: match algorithm {
                Algorithm::Boundary => RunnerConfig::default().device_bytes,
                _ => 32 << 10,
            },
            ..Default::default()
        };
        let mut cell = CrashCellOptions::default();
        cell.boundary.num_components = Some(6);
        cell.boundary.batch_transfers = false;
        for disk in [false, true] {
            for point in 0..points {
                let seed = CRASH_SEED
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(point);
                let report = run_kill_resume(&case, algorithm, disk, seed, &cfg, &cell)
                    .unwrap_or_else(|detail| {
                        panic!(
                            "{algorithm:?}/{} kill point {point} (seed {seed:#x}): {detail}",
                            if disk { "disk" } else { "memory" }
                        )
                    });
                assert_eq!(report.interrupted_kind, ApspErrorKind::Storage);
                eprintln!(
                    "{algorithm:?}/{}: {report}",
                    if disk { "disk" } else { "memory" }
                );
            }
        }
    }
}

#[test]
fn resume_against_a_corrupted_checkpoint_is_rejected_typed() {
    // Commit a real mid-run checkpoint, then corrupt it three ways. Each
    // resume must fail with `Corruption` — never produce distances.
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::Grid, 0xC8A52);
    let g = &case.graph;
    let dir = cfg.scratch_dir.join("crash-corruption");
    let _ = std::fs::remove_dir_all(&dir);

    let seed_checkpoint = || {
        let ckpt = Checkpoint::new(&dir, g).unwrap();
        ckpt.clear().unwrap();
        let mut store =
            apsp_core::TileStore::new(g.num_vertices(), &apsp_core::StorageBackend::Memory)
                .unwrap();
        apsp_core::ooc_fw::init_store_from_graph(g, &mut store).unwrap();
        ckpt.commit(
            &store,
            &apsp_core::Progress::Johnson {
                batch_size: 16,
                next_row: 16,
            },
        )
        .unwrap();
        ckpt
    };
    let resume = |forced: Option<Algorithm>| {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
        let opts = ApspOptions {
            algorithm: forced,
            checkpoint: Some(CheckpointOptions {
                dir: dir.clone(),
                resume: true,
            }),
            ..Default::default()
        };
        apsp(g, &mut dev, &opts)
    };

    // Truncated manifest.
    seed_checkpoint();
    let manifest = dir.join("manifest");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();
    let err = resume(None).expect_err("truncated manifest must not resume");
    assert_eq!(err.kind(), ApspErrorKind::Corruption, "{err}");

    // Flipped byte in the committed snapshot.
    let ckpt = seed_checkpoint();
    let slot = dir.join(&ckpt.load().unwrap().unwrap().state_file);
    let mut snap = std::fs::read(&slot).unwrap();
    let mid = snap.len() / 2;
    snap[mid] ^= 0x40;
    std::fs::write(&slot, &snap).unwrap();
    let err = resume(None).expect_err("bit-flipped snapshot must not resume");
    assert_eq!(err.kind(), ApspErrorKind::Corruption, "{err}");

    // Manifest written for a different graph (fingerprint mismatch).
    seed_checkpoint();
    let other = Case::generate(Family::Grid, 0xC8A53);
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
    let opts = ApspOptions {
        algorithm: None,
        checkpoint: Some(CheckpointOptions {
            dir: dir.clone(),
            resume: true,
        }),
        ..Default::default()
    };
    let err = apsp(&other.graph, &mut dev, &opts)
        .expect_err("a checkpoint for a different graph must not resume");
    assert_eq!(err.kind(), ApspErrorKind::Corruption, "{err}");

    // A conflicting forced algorithm is invalid input, not corruption.
    seed_checkpoint();
    let err = resume(Some(Algorithm::FloydWarshall))
        .expect_err("forcing a different algorithm than the manifest must fail");
    assert_eq!(err.kind(), ApspErrorKind::InvalidInput, "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}
