//! The silent-data-corruption conformance matrix: seeded bit flips in
//! the tile store's write path (every algorithm × {Memory, Disk}
//! storage) and in device uploads (Floyd-Warshall under the full
//! semantic guard), plus the zero-false-positive side: the whole clean
//! corpus, both exec backends, with the guard at `full` must neither
//! trip nor perturb a single bit of any result.
//!
//! Nightly CI sets `APSP_BITFLIP_POINTS` to widen the number of flip
//! sites per cell around the same fixed seed; a failure prints the
//! site label (`<algorithm>/<storage>/store-op<k>-bit<b>`) that
//! reproduces it in `run_under_bit_flip`.

use apsp_conformance::{run_under_bit_flip, Case, Corpus, Family, FlipSite, RunnerConfig};
use apsp_core::options::{Algorithm, ExecBackend, SdcGuardMode};
use apsp_core::{apsp, ApspOptions};
use apsp_cpu::bgl_plus_apsp;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{gnp, WeightRange};
use apsp_graph::INF;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::FloydWarshall,
    Algorithm::Johnson,
    Algorithm::Boundary,
];

/// The fixed bit-flip-matrix seed; widened sites derive from it.
const BITFLIP_SEED: u64 = 0xB17F;

fn bitflip_points() -> u64 {
    std::env::var("APSP_BITFLIP_POINTS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn store_flip_matrix_recovers_bit_identical_or_fails_typed() {
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::ErdosRenyi, 0x5DC2);
    let n = case.graph.num_vertices() as u64;
    // Four seeded sites inside the first `n` write ops — the window every
    // algorithm shares (Johnson and boundary write exactly one op per
    // row; Floyd-Warshall's store init alone issues `n`). Bits span the
    // value range: low bits lower distances (the dangerous direction),
    // bit 30 raises them past the `INF` ceiling.
    let mut sites = vec![(n / 8, 5u64), (n / 3, 13), (n / 2, 21), (3 * n / 4, 30)];
    let mut s = BITFLIP_SEED;
    for _ in 1..bitflip_points() {
        sites.push((1 + splitmix64(&mut s) % (n - 1), splitmix64(&mut s) % 32));
    }
    let (mut recovered, mut typed) = (0u32, 0u32);
    for algorithm in ALGORITHMS {
        for disk in [false, true] {
            for &(ordinal, bit) in &sites {
                let out = run_under_bit_flip(
                    &case,
                    algorithm,
                    disk,
                    FlipSite::Store { ordinal, bit },
                    SdcGuardMode::Checksum,
                    &cfg,
                );
                eprintln!("{out}");
                assert!(out.verdict.is_acceptable(), "{out}");
                // Store flips damage data at rest under an armed checksum
                // registry: the guard must *detect* every one — a flip
                // the schedule merely papers over would still be invisible
                // damage on any row the run never rewrote.
                assert!(out.verdict.detected(), "flip passed unnoticed: {out}");
                match out.verdict {
                    apsp_conformance::SdcVerdict::RecoveredExact { .. } => recovered += 1,
                    apsp_conformance::SdcVerdict::TypedSilentCorruption => typed += 1,
                    _ => {}
                }
            }
        }
    }
    let cells = ALGORITHMS.len() * 2 * sites.len();
    eprintln!(
        "sdc matrix: {cells} cells, {recovered} recovered bit-identical, {typed} typed failures"
    );
    assert!(
        recovered >= 1,
        "the default recovery budget should repair at least one cell"
    );
}

#[test]
fn fw_device_upload_flips_never_go_silently_wrong() {
    // Bit 30 of an upload *raises* values (every in-range distance keeps
    // bit 30 clear, because `INF = u32::MAX / 4`). A raise either gets
    // relaxed away before anything observes it (absorbed, bit-identical)
    // or persists into the store, where the full guard's semantic
    // invariants — zero diagonal, `INF` ceiling, monotone row sums —
    // catch it at the next round barrier.
    let cfg = RunnerConfig::default();
    let case = Case::generate(Family::ErdosRenyi, 0x5DC3);
    let mut detected = 0u32;
    for transfer in 1..=(3 + bitflip_points()) {
        let out = run_under_bit_flip(
            &case,
            Algorithm::FloydWarshall,
            false,
            FlipSite::Device { transfer, bit: 30 },
            SdcGuardMode::Full,
            &cfg,
        );
        eprintln!("{out}");
        assert!(out.verdict.is_acceptable(), "{out}");
        if out.verdict.detected() {
            detected += 1;
        }
    }
    // The first upload seeds the round-0 diagonal tile: flipping bit 30
    // there either leaves a nonzero diagonal or a value above `INF`, so
    // at least that site must trip the semantic guard.
    assert!(detected >= 1, "no device flip was ever detected");
}

#[test]
fn clean_corpus_never_trips_the_guard_on_any_backend() {
    // The false-positive side of the contract, across the families that
    // stress the invariants from different directions (`Disconnected`
    // is INF-heavy, `NearNegativeCycle` is zero-weight-heavy): a clean
    // run under the full guard must detect nothing, recover nothing, and
    // produce the exact matrix on both exec backends.
    let corpus = Corpus::standard(0x5DCC);
    for case in &corpus.cases {
        let reference = bgl_plus_apsp(&case.graph);
        for algorithm in ALGORITHMS {
            for scalar in [true, false] {
                let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
                let opts = ApspOptions {
                    algorithm: Some(algorithm),
                    sdc_guard: SdcGuardMode::Full,
                    exec: if scalar {
                        ExecBackend::scalar()
                    } else {
                        ExecBackend::Parallel { threads: Some(2) }
                    },
                    telemetry: true,
                    ..Default::default()
                };
                let result = apsp(&case.graph, &mut dev, &opts).unwrap_or_else(|e| {
                    panic!("{}/{algorithm:?}: guarded clean run failed: {e}", case.name)
                });
                let report = result.telemetry.as_ref().unwrap();
                assert_eq!(
                    report.sdc_detected, 0,
                    "{}/{algorithm:?}: false positive on a clean run",
                    case.name
                );
                assert_eq!(report.sdc_recovered_panel + report.sdc_recovered_round, 0);
                assert_eq!(
                    result.store.to_dist_matrix().unwrap(),
                    reference,
                    "{}/{algorithm:?}: guard perturbed the result",
                    case.name
                );
            }
        }
    }
}

#[test]
fn guard_invariants_hold_at_inf_and_saturation_boundaries() {
    // Weights just under `INF`: every two-edge path sum clamps back to
    // `INF` via `dist_add`, so the store is full of values sitting
    // exactly on the ceiling the range invariant polices and the
    // triangle samples add in `u64`. None of that may read as
    // corruption, on either backend.
    let w = WeightRange::new(INF / 2, INF - 1);
    let g = gnp(64, 0.08, w, 0x5A7);
    let reference = bgl_plus_apsp(&g);
    for algorithm in ALGORITHMS {
        for scalar in [true, false] {
            let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
            let opts = ApspOptions {
                algorithm: Some(algorithm),
                sdc_guard: SdcGuardMode::Full,
                exec: if scalar {
                    ExecBackend::scalar()
                } else {
                    ExecBackend::Parallel { threads: Some(2) }
                },
                telemetry: true,
                ..Default::default()
            };
            let result = apsp(&g, &mut dev, &opts).unwrap();
            let report = result.telemetry.as_ref().unwrap();
            assert_eq!(
                report.sdc_detected, 0,
                "{algorithm:?}: saturation clamping read as corruption"
            );
            assert_eq!(result.store.to_dist_matrix().unwrap(), reference);
        }
    }
}
