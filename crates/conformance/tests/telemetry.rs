//! The telemetry conformance matrix.
//!
//! The metrics layer's contract is that it is *pure observation*: with
//! `opts.telemetry` on, every distance matrix must stay bit-identical to
//! the telemetry-off run, and the JSONL report must be byte-identical
//! across reruns of the same configuration. This file pins both, across
//! all three algorithms × {Memory, Disk} storage × {scalar, parallel}
//! backends, and additionally checks the report's content: per-phase
//! spans, transfer byte counters, overlap efficiency, and a calibration
//! record carrying predicted + realized seconds for every non-filtered
//! candidate.
//!
//! The emitted JSONL is also validated against the checked-in schema at
//! `schemas/telemetry.schema.json` — the same check CI performs on the
//! artifact `bench_kernels --metrics-out` uploads.

use apsp_core::options::{Algorithm, ExecBackend};
use apsp_core::telemetry::{parse_json, validate_jsonl};
use apsp_core::{apsp, ApspOptions, ApspResult, StorageBackend, SupervisionOptions};
use apsp_core::{ApspErrorKind, RunReport};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::generators::{gnp, WeightRange};
use apsp_graph::CsrGraph;
use std::path::PathBuf;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::FloydWarshall,
    Algorithm::Johnson,
    Algorithm::Boundary,
];

/// The phase names each driver is contractually required to emit.
fn required_phases(algorithm: Algorithm) -> &'static [&'static str] {
    match algorithm {
        Algorithm::FloydWarshall => &["fw.diagonal", "fw.pivot", "fw.remainder", "attempt.fw"],
        Algorithm::Johnson => &["johnson.batch", "attempt.johnson"],
        Algorithm::Boundary => &[
            "boundary.dist2",
            "boundary.dist3",
            "boundary.dist4",
            "attempt.boundary",
        ],
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("apsp_conformance_telemetry")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(
    g: &CsrGraph,
    algorithm: Algorithm,
    storage: &StorageBackend,
    exec: ExecBackend,
    telemetry: bool,
) -> ApspResult {
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: storage.clone(),
        exec,
        telemetry,
        ..Default::default()
    };
    apsp(g, &mut dev, &opts).expect("conformance run failed")
}

fn check_report_content(report: &RunReport, algorithm: Algorithm) {
    for phase in required_phases(algorithm) {
        assert!(
            report.spans.iter().any(|s| s.name == *phase),
            "{algorithm:?}: missing phase span '{phase}' in {:?}",
            report.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }
    // Every algorithm downloads its result rows; only Floyd-Warshall
    // round-trips tiles (Johnson models graph residency as an
    // allocation, and boundary re-derives panels on device).
    assert!(report.bytes_d2h > 0, "{algorithm:?}: no D2H bytes counted");
    assert!(report.transfers_d2h > 0);
    if algorithm == Algorithm::FloydWarshall {
        assert!(report.bytes_h2d > 0, "{algorithm:?}: no H2D bytes counted");
    }
    assert!(report.kernel_launches > 0);
    assert!(
        (0.0..=1.0).contains(&report.overlap_efficiency),
        "{algorithm:?}: overlap efficiency {} out of range",
        report.overlap_efficiency
    );
    assert!(
        report.store_row_writes > 0,
        "{algorithm:?}: no rows written"
    );
    // No faults are injected here, so the SDC counters must be present
    // and zero — both in the struct and in the emitted run record.
    assert_eq!(report.sdc_detected, 0, "{algorithm:?}: phantom detection");
    assert_eq!(report.sdc_recovered_panel, 0);
    assert_eq!(report.sdc_recovered_round, 0);
    assert!(
        report.to_jsonl().contains("\"sdc_detected\":0"),
        "{algorithm:?}: run record missing the sdc_detected field"
    );
    assert_eq!(
        report.calibration.len(),
        ALGORITHMS.len(),
        "{algorithm:?}: every candidate must appear: {:?}",
        report.calibration
    );
    for rec in &report.calibration {
        // Every candidate is either costed or carries a filter reason —
        // density-filtered candidates carry *both* (the prediction is
        // still computed so calibration artifacts have no gaps); only
        // masked/infeasible ones are prediction-free.
        assert!(
            rec.predicted_s.is_some() || rec.filter_reason.is_some(),
            "{algorithm:?}: a candidate is neither costed nor filtered: {rec:?}"
        );
        assert_eq!(
            rec.predicted_s.is_some(),
            rec.seed_predicted_s.is_some(),
            "{algorithm:?}: refitted and seed predictions must travel together: {rec:?}"
        );
        if rec.predicted_s.is_some() {
            assert!(
                rec.realized_s.is_some(),
                "{algorithm:?}: costed candidate missing realized seconds: {rec:?}"
            );
        }
    }
}

#[test]
fn telemetry_is_pure_observation_and_its_report_is_deterministic() {
    let g = gnp(96, 0.06, WeightRange::default(), 0x7E1E);
    for algorithm in ALGORITHMS {
        for disk in [false, true] {
            for scalar in [true, false] {
                let tag = format!(
                    "{algorithm}-{}-{}",
                    if disk { "disk" } else { "memory" },
                    if scalar { "scalar" } else { "parallel" }
                );
                let exec = if scalar {
                    ExecBackend::scalar()
                } else {
                    ExecBackend::Parallel { threads: Some(2) }
                };
                let storage = |suffix: &str| {
                    if disk {
                        StorageBackend::Disk(scratch_dir(&format!("{tag}-{suffix}")))
                    } else {
                        StorageBackend::Memory
                    }
                };
                let off = run(&g, algorithm, &storage("off"), exec, false);
                let on = run(&g, algorithm, &storage("on"), exec, true);
                assert!(off.telemetry.is_none());
                // Observation must not perturb the run: same matrix,
                // bit for bit, and the same simulated clock.
                assert_eq!(
                    off.store.to_dist_matrix().unwrap(),
                    on.store.to_dist_matrix().unwrap(),
                    "{tag}: telemetry changed the result"
                );
                assert_eq!(
                    off.sim_seconds, on.sim_seconds,
                    "{tag}: telemetry changed the clock"
                );
                let report = on.telemetry.as_ref().unwrap();
                check_report_content(report, algorithm);
                // The report itself is a deterministic artifact: a rerun
                // of the identical configuration is byte-identical.
                let again = run(&g, algorithm, &storage("again"), exec, true);
                assert_eq!(
                    report.to_jsonl(),
                    again.telemetry.as_ref().unwrap().to_jsonl(),
                    "{tag}: JSONL differs across reruns"
                );
            }
        }
    }
}

#[test]
fn emitted_jsonl_validates_against_the_checked_in_schema() {
    let schema_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/telemetry.schema.json");
    let schema = parse_json(&std::fs::read_to_string(&schema_path).unwrap()).unwrap();
    let g = gnp(96, 0.06, WeightRange::default(), 0x7E1E);
    // One forced run per algorithm, plus one auto-selected run (whose
    // report includes a genuine selector batch), all against the schema.
    for algorithm in ALGORITHMS {
        let result = run(
            &g,
            algorithm,
            &StorageBackend::Memory,
            ExecBackend::scalar(),
            true,
        );
        let jsonl = result.telemetry.as_ref().unwrap().to_jsonl();
        validate_jsonl(&jsonl, &schema)
            .unwrap_or_else(|e| panic!("{algorithm:?} report fails the schema: {e}"));
    }
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
    let opts = ApspOptions {
        telemetry: true,
        ..Default::default()
    };
    let auto = apsp(&g, &mut dev, &opts).unwrap();
    let jsonl = auto.telemetry.as_ref().unwrap().to_jsonl();
    validate_jsonl(&jsonl, &schema).unwrap_or_else(|e| panic!("auto-select report: {e}"));
}

#[test]
fn sdc_counters_are_reported_and_their_record_is_deterministic() {
    // One bit-30 flip on the first device upload under the full guard:
    // the run must detect it, recover via the round rung, count both in
    // the run record, and still emit a byte-identical JSONL on a rerun
    // of the identical configuration.
    let g = gnp(90, 0.06, WeightRange::default(), 0x5DCD);
    let run_flipped = || {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(256 << 10));
        dev.inject_bit_flip(1, 30);
        let opts = ApspOptions {
            algorithm: Some(Algorithm::FloydWarshall),
            sdc_guard: apsp_core::options::SdcGuardMode::Full,
            telemetry: true,
            ..Default::default()
        };
        apsp(&g, &mut dev, &opts).expect("the guard must recover, not fail")
    };
    let first = run_flipped();
    let report = first.telemetry.as_ref().unwrap();
    assert!(report.sdc_detected >= 1, "flip never detected");
    assert!(
        report.sdc_recovered_panel + report.sdc_recovered_round >= 1,
        "detection without recovery on a default budget"
    );
    assert!(
        report
            .spans
            .iter()
            .any(|s| s.name.starts_with("sdc.recover")),
        "missing recovery phase span: {:?}",
        report.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    assert_eq!(
        first.store.to_dist_matrix().unwrap(),
        apsp_cpu::bgl_plus_apsp(&g),
        "recovery must be bit-identical"
    );
    let again = run_flipped();
    assert_eq!(
        report.to_jsonl(),
        again.telemetry.as_ref().unwrap().to_jsonl(),
        "SDC run record differs across reruns"
    );
    // The schema pins the new fields too.
    let schema_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/telemetry.schema.json");
    let schema = parse_json(&std::fs::read_to_string(&schema_path).unwrap()).unwrap();
    validate_jsonl(&report.to_jsonl(), &schema)
        .unwrap_or_else(|e| panic!("SDC report fails the schema: {e}"));
}

#[test]
fn fallback_accounting_balances_to_the_total_simulated_time() {
    // Two injected allocation failures kill the first two attempts of
    // the fallback chain regardless of which order the selector ranks
    // them; the third algorithm completes. The telemetry spans of the
    // failed attempts plus the survivor's driver time must account for
    // the device's whole clock, and each fallback event's timestamp must
    // equal the failed span's end.
    let g = gnp(100, 0.05, WeightRange::default(), 3);
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(128 << 10));
    dev.inject_alloc_failure(1);
    dev.inject_alloc_failure(3);
    let opts = ApspOptions {
        supervision: SupervisionOptions {
            fallback: true,
            retry: apsp_core::supervisor::RetryPolicy {
                max_retries: 0,
                ..Default::default()
            },
            ..Default::default()
        },
        telemetry: true,
        ..Default::default()
    };
    let result = apsp(&g, &mut dev, &opts).unwrap();
    assert_eq!(
        result.fallback_events.len(),
        2,
        "{:?}",
        result.fallback_events
    );
    for fb in &result.fallback_events {
        assert!(matches!(
            fb.error_kind,
            ApspErrorKind::OutOfDeviceMemory | ApspErrorKind::DeviceTooSmall
        ));
    }
    let report = result.telemetry.as_ref().unwrap();
    assert_eq!(report.fallbacks, 2);
    let attempts: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("attempt."))
        .collect();
    assert_eq!(attempts.len(), 3, "{attempts:?}");
    let failed: Vec<_> = attempts
        .iter()
        .filter(|s| s.name.ends_with(".failed"))
        .collect();
    assert_eq!(failed.len(), 2, "{attempts:?}");
    // Each fallback event is stamped at the moment its failed attempt's
    // span closed.
    for (fb, span) in result.fallback_events.iter().zip(&failed) {
        assert_eq!(
            fb.sim_seconds, span.end_s,
            "fallback timestamp disagrees with the failed span"
        );
    }
    // The wasted time plus the survivor's driver time is the whole run.
    let wasted: f64 = failed.iter().map(|s| s.seconds()).sum();
    let total = wasted + result.sim_seconds;
    let elapsed = result.report.elapsed;
    assert!(
        (total - elapsed).abs() <= 1e-9 * elapsed.max(1.0),
        "accounting gap: failed {wasted} + success {} != elapsed {elapsed}",
        result.sim_seconds
    );
    // Failed attempts feed realized seconds back into their calibration
    // batches: every costed candidate everywhere has both numbers.
    assert_eq!(report.calibration.len(), 3 * ALGORITHMS.len());
    for rec in &report.calibration {
        if rec.predicted_s.is_some() {
            assert!(rec.realized_s.is_some(), "{rec:?}");
        }
        assert_eq!(rec.predicted_s.is_some(), rec.seed_predicted_s.is_some());
    }
    // And the fallback chain still produced the right answer.
    assert_eq!(
        result.store.to_dist_matrix().unwrap(),
        apsp_cpu::bgl_plus_apsp(&g)
    );
}
