//! The differential conformance matrix: every corpus family through the
//! in-core baseline and the 3 algorithms × {Memory, Disk} × {overlap
//! on, off} variant grid, all diffed cell-for-cell against the CPU
//! reference. Any divergence is printed with tile and pivot-round
//! coordinates plus the seed that reproduces the case.

use apsp_conformance::{all_variants, run_case, Corpus, RunnerConfig};

/// The fixed conformance seed. CI's nightly job widens the corpus around
/// the same seed (`Corpus::extended`), so a failure there reproduces
/// locally by pasting the printed per-case seed into `Case::generate`.
const CONFORMANCE_SEED: u64 = 0xC0FFEE;

#[test]
fn standard_corpus_agrees_across_the_full_variant_matrix() {
    let corpus = Corpus::standard(CONFORMANCE_SEED);
    assert!(corpus.cases.len() >= 6, "corpus must span ≥6 families");
    assert_eq!(
        all_variants().len(),
        12,
        "3 algorithms × 2 backends × 2 overlap modes"
    );
    let cfg = RunnerConfig::default();
    let mut failures = 0;
    let mut runs = 0;
    for case in &corpus.cases {
        let report = run_case(case, &cfg)
            .unwrap_or_else(|e| panic!("case {} failed to run: {e}", case.name));
        runs += report.runs_compared;
        for d in &report.divergences {
            eprintln!("{d}");
            failures += 1;
        }
    }
    // 6 families × (12 variants + the in-core baseline).
    assert_eq!(runs, corpus.cases.len() * 13);
    assert_eq!(failures, 0, "{failures} divergences (details above)");
}

#[test]
fn extended_corpus_scales_with_requested_rounds() {
    // Nightly CI sets APSP_CONFORMANCE_ROUNDS to widen the corpus around
    // the same fixed seed. Without it, tier-1 keeps one extra round per
    // family alive (last case only) so `extended` cannot rot.
    let env_rounds = std::env::var("APSP_CONFORMANCE_ROUNDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let corpus = Corpus::extended(CONFORMANCE_SEED, env_rounds.unwrap_or(2));
    let cfg = RunnerConfig::default();
    let start = if env_rounds.is_some() {
        0
    } else {
        corpus.cases.len() - 1
    };
    for case in &corpus.cases[start..] {
        let report = run_case(case, &cfg)
            .unwrap_or_else(|e| panic!("case {} failed to run: {e}", case.name));
        for d in &report.divergences {
            eprintln!("{d}");
        }
        assert!(report.divergences.is_empty(), "case {} diverged", case.name);
    }
}
