//! The silent-data-corruption (bit-flip) conformance harness.
//!
//! [`run_under_bit_flip`] arms exactly one seeded bit flip
//! ([`crate::fault::Fault::BitFlip`]) —
//! either in the tile store's write path ([`FlipSite::Store`]) or in a
//! device upload ([`FlipSite::Device`]) — runs one algorithm with its
//! SDC guard active, and classifies the outcome against the only two
//! acceptable behaviours:
//!
//! * the run completes and the matrix is **bit-identical** to the clean
//!   reference — either the guard detected the flip and its recovery
//!   ladder repaired it, or the relaxation schedule overwrote the
//!   corrupted row before any consumer read it (an *absorbed* flip);
//! * the run fails with typed [`ApspError::SilentCorruption`] — the
//!   guard detected damage its recovery budget could not repair.
//!
//! Anything else — a wrong matrix, or any other error kind — is
//! [`SdcVerdict::Unacceptable`], the silent-corruption failure mode this
//! harness exists to rule out.
//!
//! [`ApspError::SilentCorruption`]: apsp_core::ApspError::SilentCorruption

use crate::corpus::Case;
use crate::runner::RunnerConfig;
use apsp_core::ooc_boundary::ooc_boundary_supervised;
use apsp_core::ooc_fw::ooc_floyd_warshall_guarded;
use apsp_core::ooc_johnson::ooc_johnson_supervised;
use apsp_core::options::{Algorithm, BoundaryOptions, FwOptions, JohnsonOptions, SdcGuardMode};
use apsp_core::supervisor::Supervisor;
use apsp_core::{ApspErrorKind, StorageBackend, TileStore};
use apsp_cpu::bgl_plus_apsp;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

/// Where the injected flip lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipSite {
    /// The store row written by write op `ordinal` (0-based) flips `bit`
    /// after the write lands — silent damage to data at rest. Checksums
    /// ([`SdcGuardMode::Checksum`]) catch these.
    Store {
        /// 0-based store write-op ordinal.
        ordinal: u64,
        /// Which bit of the row's byte span flips.
        bit: u64,
    },
    /// The `transfer`th non-empty host-to-device upload (1-based) flips
    /// `bit` of its payload — damage *inside* the compute path, invisible
    /// to store checksums. Only the semantic invariants of
    /// [`SdcGuardMode::Full`] can see its consequences.
    Device {
        /// 1-based non-empty H2D transfer ordinal.
        transfer: u64,
        /// Which bit of the transferred byte span flips.
        bit: u64,
    },
}

impl std::fmt::Display for FlipSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlipSite::Store { ordinal, bit } => write!(f, "store-op{ordinal}-bit{bit}"),
            FlipSite::Device { transfer, bit } => write!(f, "device-h2d{transfer}-bit{bit}"),
        }
    }
}

/// How one guarded run behaved under a single injected flip.
#[derive(Debug)]
pub enum SdcVerdict {
    /// The guard detected the flip, the recovery ladder repaired it, and
    /// the matrix equals the clean reference bit for bit.
    RecoveredExact {
        /// Panel-scoped recoveries the driver reported.
        panel: u32,
        /// Round-scoped (full-replay) recoveries the driver reported.
        round: u32,
    },
    /// The flip fired but the matrix is bit-identical anyway: the
    /// relaxation schedule overwrote the damage before anything read it.
    AbsorbedExact,
    /// The run failed typed [`ApspErrorKind::SilentCorruption`] — the
    /// detection worked and the exhausted ladder surfaced honestly.
    TypedSilentCorruption,
    /// A wrong matrix or a wrong error kind — the harness failure.
    Unacceptable {
        /// What was wrong.
        detail: String,
    },
}

impl SdcVerdict {
    /// Whether the run upheld the contract: bit-identical or typed,
    /// never silently wrong.
    pub fn is_acceptable(&self) -> bool {
        !matches!(self, SdcVerdict::Unacceptable { .. })
    }

    /// Whether the guard actively detected the flip (recovered or typed)
    /// rather than the schedule absorbing it.
    pub fn detected(&self) -> bool {
        matches!(
            self,
            SdcVerdict::RecoveredExact { .. } | SdcVerdict::TypedSilentCorruption
        )
    }
}

/// One cell of the bit-flip matrix, with the coordinates a report needs.
#[derive(Debug)]
pub struct SdcOutcome {
    /// `"<algorithm>/<storage>/<site>"`, the handle the report prints.
    pub label: String,
    /// How the run behaved.
    pub verdict: SdcVerdict,
}

impl std::fmt::Display for SdcOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.verdict {
            SdcVerdict::RecoveredExact { panel, round } => write!(
                f,
                "{}: detected, recovered exact (panel rungs {panel}, round rungs {round})",
                self.label
            ),
            SdcVerdict::AbsorbedExact => {
                write!(f, "{}: absorbed by the schedule, exact", self.label)
            }
            SdcVerdict::TypedSilentCorruption => {
                write!(
                    f,
                    "{}: typed SilentCorruption (budget exhausted)",
                    self.label
                )
            }
            SdcVerdict::Unacceptable { detail } => {
                write!(f, "{}: UNACCEPTABLE — {detail}", self.label)
            }
        }
    }
}

/// Run `algorithm` on `case` with one `site` flip armed under `mode`,
/// classify the outcome, and verify the never-silently-wrong contract.
pub fn run_under_bit_flip(
    case: &Case,
    algorithm: Algorithm,
    disk: bool,
    site: FlipSite,
    mode: SdcGuardMode,
    cfg: &RunnerConfig,
) -> SdcOutcome {
    let g = &case.graph;
    let n = g.num_vertices();
    let reference = bgl_plus_apsp(g);
    let label = format!(
        "{algorithm:?}/{}/{site}",
        if disk { "disk" } else { "memory" }
    );
    let unacceptable = |detail: String| SdcOutcome {
        label: label.clone(),
        verdict: SdcVerdict::Unacceptable { detail },
    };

    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
    let backend = if disk {
        StorageBackend::Disk(cfg.scratch_dir.clone())
    } else {
        StorageBackend::Memory
    };
    let mut store = match TileStore::new(n, &backend) {
        Ok(s) => s,
        Err(e) => return unacceptable(format!("store creation failed before any flip: {e}")),
    };
    // Guard first, flip second: the checksum registry must hold *clean*
    // hashes before the countdown starts, exactly as a production run
    // armed at startup would.
    if let Err(e) = store.set_sdc_guard(mode) {
        return unacceptable(format!("guard arming failed: {e}"));
    }
    match site {
        FlipSite::Store { ordinal, bit } => store.arm_bit_flip(ordinal, bit),
        FlipSite::Device { transfer, bit } => dev.inject_bit_flip(transfer, bit),
    }

    let sup = Supervisor::unarmed();
    // (panel, round) recovery counts, per driver.
    let run = match algorithm {
        Algorithm::FloydWarshall => {
            let opts = FwOptions {
                sdc_guard: mode,
                ..Default::default()
            };
            ooc_floyd_warshall_guarded(&mut dev, g, &mut store, &opts, &sup)
                .map(|s| (s.sdc_panel_recoveries, s.sdc_round_recoveries))
        }
        Algorithm::Johnson => {
            let opts = JohnsonOptions {
                sdc_guard: mode,
                ..Default::default()
            };
            ooc_johnson_supervised(&mut dev, g, &mut store, &opts, &sup)
                .map(|s| (s.sdc_panel_recoveries, s.sdc_round_recoveries))
        }
        Algorithm::Boundary => {
            let opts = BoundaryOptions {
                sdc_guard: mode,
                ..Default::default()
            };
            // Boundary never reads the store, so its one exact rung is a
            // full recomputation — there is no panel-scoped count.
            ooc_boundary_supervised(&mut dev, g, &mut store, &opts, &sup)
                .map(|s| (0, s.sdc_round_recoveries))
        }
    };
    dev.clear_bit_flips();

    let verdict = match run {
        Ok((panel, round)) => {
            let got = match store.to_dist_matrix() {
                Ok(m) => m,
                Err(e) => {
                    return unacceptable(format!("store unreadable after an Ok run: {e}"));
                }
            };
            if got != reference {
                let idx = (0..n * n)
                    .find(|&i| got.as_slice()[i] != reference.as_slice()[i])
                    .unwrap();
                SdcVerdict::Unacceptable {
                    detail: format!(
                        "SILENTLY WRONG: cell ({}, {}) = {}, expected {} \
                         (recoveries panel {panel} / round {round})",
                        idx / n,
                        idx % n,
                        got.as_slice()[idx],
                        reference.as_slice()[idx]
                    ),
                }
            } else if panel + round > 0 {
                SdcVerdict::RecoveredExact { panel, round }
            } else {
                SdcVerdict::AbsorbedExact
            }
        }
        Err(e) if e.kind() == ApspErrorKind::SilentCorruption => SdcVerdict::TypedSilentCorruption,
        Err(e) => SdcVerdict::Unacceptable {
            detail: format!("wrong error kind {:?}: {e}", e.kind()),
        },
    };
    SdcOutcome { label, verdict }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Family;

    #[test]
    fn a_store_flip_on_a_guarded_run_is_detected_and_repaired() {
        let cfg = RunnerConfig::default();
        let case = Case::generate(Family::ErdosRenyi, 0x5DC1);
        let out = run_under_bit_flip(
            &case,
            Algorithm::Johnson,
            false,
            FlipSite::Store {
                ordinal: 20,
                bit: 9,
            },
            SdcGuardMode::Checksum,
            &cfg,
        );
        assert!(out.verdict.is_acceptable(), "{out}");
        assert!(out.verdict.detected(), "{out}");
    }

    #[test]
    fn flip_site_labels_are_printable_and_distinct() {
        let a = FlipSite::Store { ordinal: 3, bit: 7 }.to_string();
        let b = FlipSite::Device {
            transfer: 1,
            bit: 30,
        }
        .to_string();
        assert_eq!(a, "store-op3-bit7");
        assert_eq!(b, "device-h2d1-bit30");
    }
}
