//! The kill–resume differential harness.
//!
//! Each cell of the crash matrix proves one checkpoint/resume contract:
//! a run killed at an arbitrary store operation and then resumed in a
//! fresh "process" (new device, new store, same checkpoint directory)
//! produces a matrix bit-identical to the uninterrupted run. The kill
//! point is drawn deterministically from a seed, so every failure
//! reproduces from its printed `CrashReport`.
//!
//! The three steps of [`run_kill_resume`]:
//!
//! 1. **Baseline** — an uninterrupted checkpointed run with the crash
//!    counter armed at `u64::MAX`, measuring the total number of
//!    row-granular store operations and establishing matrix *A* (checked
//!    against the CPU reference).
//! 2. **Kill** — a fresh device and store replay the identical operation
//!    sequence with a crash armed after `N ∈ [1, total)` operations,
//!    drawn from the seed. The run must die with a typed error; whatever
//!    the checkpoint directory holds at that instant is what a real
//!    crash would leave behind.
//! 3. **Resume** — another fresh device and store run the same
//!    checkpointed driver against the surviving directory. The result
//!    must equal *A* bitwise and the checkpoint must be cleared.

use crate::corpus::{splitmix64, Case};
use crate::runner::RunnerConfig;
use apsp_core::ooc_boundary::ooc_boundary_checkpointed;
use apsp_core::ooc_fw::ooc_floyd_warshall_checkpointed;
use apsp_core::ooc_johnson::ooc_johnson_checkpointed;
use apsp_core::options::{Algorithm, BoundaryOptions, FwOptions, JohnsonOptions};
use apsp_core::{ApspErrorKind, Checkpoint, StorageBackend, TileStore};
use apsp_cpu::bgl_plus_apsp;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

/// Per-algorithm knobs for one kill–resume cell. Defaults mirror the
/// production defaults; tests override them to force multiple commit
/// barriers (e.g. a fixed boundary component count) so the resume path
/// genuinely replays from a manifest.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashCellOptions {
    /// Floyd-Warshall knobs for the cell.
    pub fw: FwOptions,
    /// Johnson knobs for the cell.
    pub johnson: JohnsonOptions,
    /// Boundary knobs for the cell.
    pub boundary: BoundaryOptions,
}

/// What one kill–resume cell did, for logging and assertions.
#[derive(Debug)]
pub struct CrashReport {
    /// Row-granular store operations in the uninterrupted run.
    pub total_ops: u64,
    /// Operation budget the killed run was given (`1 ≤ ops < total`).
    pub crash_after_ops: u64,
    /// Typed classification of the injected failure (always `Storage`).
    pub interrupted_kind: ApspErrorKind,
    /// Whether the kill left a loadable manifest behind. `false` means
    /// the crash landed before the first commit (or mid-commit of the
    /// first), so the resume was a clean restart — still exact.
    pub resumed_from_manifest: bool,
}

impl std::fmt::Display for CrashReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "killed after {}/{} store ops ({:?}), resumed {} → exact",
            self.crash_after_ops,
            self.total_ops,
            self.interrupted_kind,
            if self.resumed_from_manifest {
                "from the manifest"
            } else {
                "as a clean restart (no commit survived)"
            },
        )
    }
}

fn run_checkpointed(
    algorithm: Algorithm,
    dev: &mut GpuDevice,
    g: &apsp_graph::CsrGraph,
    store: &mut TileStore,
    ckpt: &Checkpoint,
    cell: &CrashCellOptions,
) -> Result<(), apsp_core::ApspError> {
    match algorithm {
        Algorithm::FloydWarshall => {
            ooc_floyd_warshall_checkpointed(dev, g, store, &cell.fw, ckpt)?;
        }
        Algorithm::Johnson => {
            ooc_johnson_checkpointed(dev, g, store, &cell.johnson, ckpt)?;
        }
        Algorithm::Boundary => {
            ooc_boundary_checkpointed(dev, g, store, &cell.boundary, ckpt)?;
        }
    }
    Ok(())
}

fn check_exact(
    store: &TileStore,
    reference: &apsp_cpu::DistMatrix,
    when: &str,
) -> Result<(), String> {
    let got = store
        .to_dist_matrix()
        .map_err(|e| format!("store unreadable {when}: {e}"))?;
    if &got == reference {
        return Ok(());
    }
    let n = reference.n();
    let idx = (0..n * n)
        .find(|&i| got.as_slice()[i] != reference.as_slice()[i])
        .unwrap();
    Err(format!(
        "{when}: cell ({}, {}) = {}, expected {}",
        idx / n,
        idx % n,
        got.as_slice()[idx],
        reference.as_slice()[idx]
    ))
}

/// Run one cell of the kill–resume matrix: `algorithm` on `case`, with
/// the store on `Memory` or `Disk` per `disk`, killed at a point drawn
/// from `crash_seed` and resumed from the surviving checkpoint.
///
/// Returns `Err` with a reproduction-ready description on any contract
/// violation: the interrupted run not failing, the resumed matrix
/// differing from the uninterrupted one, or checkpoint state leaking
/// past a completed run.
pub fn run_kill_resume(
    case: &Case,
    algorithm: Algorithm,
    disk: bool,
    crash_seed: u64,
    cfg: &RunnerConfig,
    cell: &CrashCellOptions,
) -> Result<CrashReport, String> {
    let g = &case.graph;
    let n = g.num_vertices();
    let reference = bgl_plus_apsp(g);
    let tag = match algorithm {
        Algorithm::FloydWarshall => "fw",
        Algorithm::Johnson => "johnson",
        Algorithm::Boundary => "boundary",
    };
    // The checkpoint lives in its own subdirectory: `TileStore::persist`
    // refuses to write snapshots into a `Disk` store's spill directory.
    let ckpt_dir = cfg.scratch_dir.join(format!(
        "crash-{}-{}-{}-{:x}",
        case.name,
        tag,
        if disk { "disk" } else { "memory" },
        crash_seed
    ));
    let backend = if disk {
        StorageBackend::Disk(cfg.scratch_dir.clone())
    } else {
        StorageBackend::Memory
    };
    let new_dev = || GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
    let new_store =
        || TileStore::new(n, &backend).map_err(|e| format!("store creation failed: {e}"));

    // Step 1: the uninterrupted run — matrix A and the op budget.
    let ckpt =
        Checkpoint::new(&ckpt_dir, g).map_err(|e| format!("checkpoint dir unusable: {e}"))?;
    ckpt.clear()
        .map_err(|e| format!("stale checkpoint unclearable: {e}"))?;
    let mut dev = new_dev();
    let mut store = new_store()?;
    store.arm_crash(u64::MAX);
    run_checkpointed(algorithm, &mut dev, g, &mut store, &ckpt, cell)
        .map_err(|e| format!("uninterrupted checkpointed run failed: {e}"))?;
    let total_ops = store.crash_ops();
    store.disarm_crash();
    check_exact(&store, &reference, "after the uninterrupted run")?;
    if ckpt
        .load()
        .map_err(|e| format!("manifest unreadable after the clean run: {e}"))?
        .is_some()
    {
        return Err("the uninterrupted run left its checkpoint behind".into());
    }
    if total_ops < 2 {
        return Err(format!(
            "run too small to interrupt ({total_ops} store ops)"
        ));
    }

    // Step 2: the kill. Same op sequence, so any budget below the total
    // is guaranteed to fire.
    let mut s = crash_seed;
    let crash_after = 1 + splitmix64(&mut s) % (total_ops - 1);
    let mut dev = new_dev();
    let mut store = new_store()?;
    store.arm_crash(crash_after);
    let interrupted_kind = match run_checkpointed(algorithm, &mut dev, g, &mut store, &ckpt, cell) {
        Err(e) => e.kind(),
        Ok(()) => {
            return Err(format!(
                "armed crash after {crash_after}/{total_ops} ops never fired"
            ))
        }
    };
    drop(store);
    let resumed_from_manifest = ckpt
        .load()
        .map_err(|e| format!("manifest unreadable after the kill: {e}"))?
        .is_some();

    // Step 3: the resume — fresh device, fresh store, same directory.
    let mut dev = new_dev();
    let mut store = new_store()?;
    run_checkpointed(algorithm, &mut dev, g, &mut store, &ckpt, cell)
        .map_err(|e| format!("resume after a kill at op {crash_after}/{total_ops} failed: {e}"))?;
    check_exact(
        &store,
        &reference,
        &format!("after resuming a kill at op {crash_after}/{total_ops}"),
    )?;
    if ckpt
        .load()
        .map_err(|e| format!("manifest unreadable after the resume: {e}"))?
        .is_some()
    {
        return Err("the resumed run left its checkpoint behind".into());
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(CrashReport {
        total_ops,
        crash_after_ops: crash_after,
        interrupted_kind,
        resumed_from_manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Family;

    #[test]
    fn one_cell_of_the_matrix_round_trips() {
        let cfg = RunnerConfig::default();
        let case = Case::generate(Family::ErdosRenyi, 0xC8A5);
        let cell = CrashCellOptions::default();
        let report = run_kill_resume(&case, Algorithm::FloydWarshall, false, 11, &cfg, &cell)
            .expect("kill–resume cell must hold");
        assert_eq!(report.interrupted_kind, ApspErrorKind::Storage);
        assert!(report.crash_after_ops < report.total_ops);
        assert!(report.to_string().contains("exact"));
    }
}
