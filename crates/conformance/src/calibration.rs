//! Replay harness for the self-calibrating selector.
//!
//! A *replay* runs the same graph on the same device profile `rounds`
//! times with a persisted calibration store between runs — the setting
//! the store is built for: each run folds its realized seconds back into
//! the per-profile coefficients, so the selector's prediction for the
//! algorithm it keeps choosing must converge onto the realized time.
//!
//! The harness records, per round, which algorithm won, the refitted and
//! seed predictions, and the realized simulated seconds, and checks each
//! round's distance matrix bit-for-bit against an uncalibrated baseline
//! (calibration must never perturb a result — it only reorders future
//! predictions). `tests/calibration.rs` asserts the convergence contract
//! on top; the nightly CI job widens the same replay via
//! `APSP_CALIBRATION_RUNS`.

use apsp_core::options::Algorithm;
use apsp_core::{apsp, ApspOptions, CalibrationStore};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::CsrGraph;
use std::path::{Path, PathBuf};

/// One run of a replay sequence, as seen by the selector.
#[derive(Debug, Clone)]
pub struct ReplayRound {
    /// Zero-based round index.
    pub round: usize,
    /// The algorithm the (possibly refitted) selector chose.
    pub selected: Algorithm,
    /// The selector's prediction for the winner, refit applied.
    pub predicted_s: f64,
    /// The same prediction under seed constants alone.
    pub seed_predicted_s: f64,
    /// Realized simulated seconds of the run.
    pub realized_s: f64,
    /// Whether this round's matrix was bit-identical to the
    /// uncalibrated baseline's.
    pub matrix_identical: bool,
}

impl ReplayRound {
    /// `|predicted − realized| / realized` — the convergence metric.
    pub fn rel_error(&self) -> f64 {
        (self.predicted_s - self.realized_s).abs() / self.realized_s
    }
}

/// The result of a full replay sequence on one device profile.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Profile the sequence ran on.
    pub profile_name: String,
    /// On-disk path of the calibration store the sequence grew.
    pub store_path: PathBuf,
    /// Per-round observations, in order.
    pub rounds: Vec<ReplayRound>,
    /// The algorithm that is realized-fastest on this graph + profile,
    /// measured by forcing each algorithm in turn (without calibration)
    /// and comparing simulated clocks. Algorithms that cannot run on the
    /// profile (e.g. boundary on a too-small device) are skipped.
    pub realized_fastest: Algorithm,
}

impl ReplayReport {
    /// Running mean of the relative error over rounds `0..=k`.
    pub fn mean_rel_error_through(&self, k: usize) -> f64 {
        let upto = &self.rounds[..=k];
        upto.iter().map(ReplayRound::rel_error).sum::<f64>() / upto.len() as f64
    }

    /// The last round's winner.
    pub fn final_selected(&self) -> Algorithm {
        self.rounds
            .last()
            .expect("replay ran at least one round")
            .selected
    }

    /// Human-readable per-round table (CI artifact).
    pub fn render(&self) -> String {
        let mut out = format!(
            "replay on {} ({} rounds), realized-fastest = {}\n",
            self.profile_name,
            self.rounds.len(),
            self.realized_fastest
        );
        for r in &self.rounds {
            out.push_str(&format!(
                "  round {}: {} predicted {:.9} s (seed {:.9} s) realized {:.9} s rel_err {:.6} mean {:.6}\n",
                r.round,
                r.selected,
                r.predicted_s,
                r.seed_predicted_s,
                r.realized_s,
                r.rel_error(),
                self.mean_rel_error_through(r.round),
            ));
        }
        out
    }
}

fn run_once(
    g: &CsrGraph,
    profile: &DeviceProfile,
    calibration_dir: Option<&Path>,
    algorithm: Option<Algorithm>,
) -> apsp_core::ApspResult {
    let mut dev = GpuDevice::new(profile.clone());
    let opts = ApspOptions {
        algorithm,
        telemetry: true,
        calibration_dir: calibration_dir.map(Path::to_path_buf),
        ..Default::default()
    };
    apsp(g, &mut dev, &opts).expect("replay run failed")
}

/// Run the replay sequence: an uncalibrated baseline, then `rounds`
/// auto-selected runs sharing the calibration store in `dir`.
///
/// Panics if any run fails or a round's telemetry lacks the selected
/// candidate's prediction — both would be harness bugs, not findings.
pub fn replay(profile: &DeviceProfile, g: &CsrGraph, dir: &Path, rounds: usize) -> ReplayReport {
    assert!(rounds >= 1, "a replay needs at least one round");
    let baseline = run_once(g, profile, None, None);
    let baseline_matrix = baseline.store.to_dist_matrix().expect("baseline matrix");

    // Which algorithm is actually fastest here? Force each in turn on a
    // fresh device; infeasible ones simply don't compete.
    let realized_fastest = [
        Algorithm::Johnson,
        Algorithm::FloydWarshall,
        Algorithm::Boundary,
    ]
    .into_iter()
    .filter_map(|a| {
        let mut dev = GpuDevice::new(profile.clone());
        let opts = ApspOptions {
            algorithm: Some(a),
            ..Default::default()
        };
        apsp(g, &mut dev, &opts).ok().map(|r| (a, r.sim_seconds))
    })
    .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite clocks"))
    .expect("at least one algorithm must run")
    .0;

    let mut report = ReplayReport {
        profile_name: profile.name.clone(),
        store_path: CalibrationStore::fresh(dir, profile).path().to_path_buf(),
        rounds: Vec::with_capacity(rounds),
        realized_fastest,
    };
    for round in 0..rounds {
        let result = run_once(g, profile, Some(dir), None);
        let rec = result
            .telemetry
            .as_ref()
            .expect("telemetry is on for replay runs")
            .calibration
            .iter()
            .find(|c| c.selected)
            .expect("one candidate is always selected")
            .clone();
        let matrix_identical =
            result.store.to_dist_matrix().expect("round matrix") == baseline_matrix;
        report.rounds.push(ReplayRound {
            round,
            selected: result.algorithm,
            predicted_s: rec.predicted_s.expect("the winner always has a prediction"),
            seed_predicted_s: rec
                .seed_predicted_s
                .expect("the winner always has a seed prediction"),
            realized_s: result.sim_seconds,
            matrix_identical,
        });
    }
    report
}
