//! The supervision conformance harness: deadlines, cancellation, stall
//! detection and the automatic algorithm fallback chain.
//!
//! Three contracts, each proven differentially against clean runs:
//!
//! 1. **Cancel/deadline** ([`run_cancel_resume`], [`run_deadline_abort`])
//!    — a cancelled or deadlined run fails with the matching typed
//!    [`ApspErrorKind`] at the next supervision check, and whatever the
//!    checkpoint directory holds at that instant resumes to the exact
//!    matrix in a fresh "process".
//! 2. **Stall → fallback** ([`run_stall_fallback`]) — a kernel hang
//!    (injected at a seed-chosen launch) trips the watchdog, the fallback
//!    chain re-selects with the stalled algorithm masked, and the final
//!    matrix is bit-identical to a clean run of the fallback algorithm.
//! 3. **Determinism** — all supervision clocks are simulated and all
//!    jitter is seeded, so re-running a cell with the same seed yields
//!    the same retry/stall/fallback event sequence; tests assert
//!    [`StallFallbackReport`]s compare equal across repeats.

use crate::corpus::{splitmix64, Case};
use crate::runner::RunnerConfig;
use apsp_core::options::Algorithm;
use apsp_core::{
    apsp, ApspErrorKind, ApspOptions, CancelToken, Checkpoint, CheckpointOptions, FallbackEvent,
    StorageBackend, SupervisionEvent, SupervisionOptions,
};
use apsp_cpu::bgl_plus_apsp;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

/// Simulated seconds a hung kernel is stretched by — far beyond any
/// sensible progress budget, so the watchdog always notices.
const HANG_SECONDS: f64 = 1e6;

/// Progress budget used by the stall cells (simulated milliseconds).
/// Generous against real barrier gaps (sub-second at corpus scale) and
/// tiny against [`HANG_SECONDS`].
const STALL_BUDGET_MS: u64 = 60_000;

fn algo_tag(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::FloydWarshall => "fw",
        Algorithm::Johnson => "johnson",
        Algorithm::Boundary => "boundary",
    }
}

fn backend_for(disk: bool, cfg: &RunnerConfig) -> StorageBackend {
    if disk {
        StorageBackend::Disk(cfg.scratch_dir.clone())
    } else {
        StorageBackend::Memory
    }
}

fn new_dev(cfg: &RunnerConfig) -> GpuDevice {
    GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes))
}

fn check_exact(
    store: &apsp_core::TileStore,
    reference: &apsp_cpu::DistMatrix,
    when: &str,
) -> Result<(), String> {
    let got = store
        .to_dist_matrix()
        .map_err(|e| format!("store unreadable {when}: {e}"))?;
    if &got == reference {
        return Ok(());
    }
    let n = reference.n();
    let idx = (0..n * n)
        .find(|&i| got.as_slice()[i] != reference.as_slice()[i])
        .unwrap();
    Err(format!(
        "{when}: cell ({}, {}) = {}, expected {}",
        idx / n,
        idx % n,
        got.as_slice()[idx],
        reference.as_slice()[idx]
    ))
}

/// What one stall–fallback cell did. Two runs of the same cell must
/// produce equal reports (the determinism contract), so everything in
/// here is derived from seeded state only.
#[derive(Debug, Clone, PartialEq)]
pub struct StallFallbackReport {
    /// The algorithm that was stalled.
    pub from: Algorithm,
    /// The algorithm the fallback chain switched to.
    pub to: Algorithm,
    /// Which kernel launch (1-based) absorbed the injected hang.
    pub stalled_launch: u64,
    /// The fallback events the run recorded (always exactly one here).
    pub fallbacks: Vec<FallbackEvent>,
    /// The full supervision event stream, in order.
    pub events: Vec<SupervisionEvent>,
}

impl std::fmt::Display for StallFallbackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} stalled at launch {} → fell back to {} ({} supervision events) → exact",
            algo_tag(self.from),
            self.stalled_launch,
            algo_tag(self.to),
            self.events.len(),
        )
    }
}

/// Run one cell of the stall–fallback matrix: `algorithm` on `case`
/// with the store on `Memory` or `Disk` per `disk`, a hang injected at
/// a launch drawn from `seed`, the watchdog armed, and fallback on.
///
/// Asserts the full contract: the stalled run still completes (via the
/// chain), records exactly one `Stalled` fallback away from `algorithm`,
/// and its matrix is bit-identical to a clean, unsupervised run of the
/// fallback algorithm on a fresh device and store.
pub fn run_stall_fallback(
    case: &Case,
    algorithm: Algorithm,
    disk: bool,
    seed: u64,
    cfg: &RunnerConfig,
) -> Result<StallFallbackReport, String> {
    let g = &case.graph;
    let reference = bgl_plus_apsp(g);
    let backend = backend_for(disk, cfg);

    // Measure the clean run's launch count so the hang can be placed at
    // any real launch, not just the first.
    let mut dev = new_dev(cfg);
    let clean_opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: backend.clone(),
        ..Default::default()
    };
    let clean = apsp(g, &mut dev, &clean_opts)
        .map_err(|e| format!("clean {algorithm} run failed before any injection: {e}"))?;
    check_exact(&clean.store, &reference, "after the clean run")?;
    let total_launches: u64 = clean.report.kernels.values().map(|k| k.launches).sum();
    if total_launches == 0 {
        return Err(format!(
            "{algorithm} launched no kernels — nothing to stall"
        ));
    }

    // The stalled run: same forced algorithm, watchdog armed, fallback on.
    let mut s = seed;
    let stalled_launch = 1 + splitmix64(&mut s) % total_launches;
    let mut dev = new_dev(cfg);
    dev.inject_kernel_stall(stalled_launch, HANG_SECONDS);
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: backend.clone(),
        supervision: SupervisionOptions {
            progress_budget_ms: Some(STALL_BUDGET_MS),
            fallback: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = apsp(g, &mut dev, &opts).map_err(|e| {
        format!("stall at launch {stalled_launch}/{total_launches} was not absorbed: {e}")
    })?;

    if result.fallback_events.len() != 1 {
        return Err(format!(
            "expected exactly one fallback, got {:?}",
            result.fallback_events
        ));
    }
    let fb = &result.fallback_events[0];
    if fb.from != algorithm || fb.error_kind != ApspErrorKind::Stalled {
        return Err(format!("unexpected fallback event: {fb:?}"));
    }
    if !result
        .supervision_events
        .iter()
        .any(|e| matches!(e, SupervisionEvent::Stall { .. }))
    {
        return Err("the watchdog never recorded a stall event".into());
    }

    // The differential half: a clean, unsupervised run of the fallback
    // algorithm must produce the identical matrix.
    let to = fb.to;
    let mut dev = new_dev(cfg);
    let fallback_clean_opts = ApspOptions {
        algorithm: Some(to),
        storage: backend,
        ..Default::default()
    };
    let expect = apsp(g, &mut dev, &fallback_clean_opts)
        .map_err(|e| format!("clean run of the fallback algorithm {to} failed: {e}"))?;
    let a = result
        .store
        .to_dist_matrix()
        .map_err(|e| format!("fallback store unreadable: {e}"))?;
    let b = expect
        .store
        .to_dist_matrix()
        .map_err(|e| format!("clean fallback store unreadable: {e}"))?;
    if a != b {
        return Err(format!(
            "fallback result differs from a clean {to} run (stall at launch \
             {stalled_launch}/{total_launches})"
        ));
    }
    check_exact(&result.store, &reference, "after the fallback run")?;

    Ok(StallFallbackReport {
        from: algorithm,
        to,
        stalled_launch,
        fallbacks: result.fallback_events,
        events: result.supervision_events,
    })
}

/// What one cancel–resume cell did.
#[derive(Debug)]
pub struct CancelReport {
    /// Supervision checks the token allowed before tripping.
    pub cancel_after_checks: u64,
    /// Whether a committed manifest survived the cancellation (`false`
    /// means the trip landed before the first commit and the resume was
    /// a clean restart — still exact).
    pub resumed_from_manifest: bool,
}

impl std::fmt::Display for CancelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cancelled after {} checks, resumed {} → exact",
            self.cancel_after_checks,
            if self.resumed_from_manifest {
                "from the manifest"
            } else {
                "as a clean restart"
            },
        )
    }
}

/// Run one cancel–resume cell: a checkpointed run of `algorithm` is
/// cancelled after a seed-chosen number of supervision checks (low
/// enough to always land mid-run at corpus scale), must fail with the
/// typed `Cancelled` kind, and must then resume from the surviving
/// checkpoint directory to the exact matrix.
pub fn run_cancel_resume(
    case: &Case,
    algorithm: Algorithm,
    disk: bool,
    seed: u64,
    cfg: &RunnerConfig,
) -> Result<CancelReport, String> {
    let g = &case.graph;
    let reference = bgl_plus_apsp(g);
    let backend = backend_for(disk, cfg);
    let ckpt_dir = cfg.scratch_dir.join(format!(
        "supervise-{}-{}-{}-{seed:x}",
        case.name,
        algo_tag(algorithm),
        if disk { "disk" } else { "memory" },
    ));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // Every corpus case issues at least n ≥ 80 store operations, each of
    // which is a supervision check — a budget below that always trips
    // mid-run.
    let mut s = seed;
    let cancel_after = 1 + splitmix64(&mut s) % 64;
    let mut dev = new_dev(cfg);
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: backend.clone(),
        checkpoint: Some(CheckpointOptions {
            dir: ckpt_dir.clone(),
            resume: false,
        }),
        supervision: SupervisionOptions {
            cancel: Some(CancelToken::cancel_after_checks(cancel_after)),
            ..Default::default()
        },
        ..Default::default()
    };
    let err = match apsp(g, &mut dev, &opts) {
        Err(e) => e,
        Ok(_) => {
            return Err(format!(
                "cancellation after {cancel_after} checks never fired"
            ))
        }
    };
    if err.kind() != ApspErrorKind::Cancelled {
        return Err(format!("expected a typed cancellation, got: {err}"));
    }
    let ckpt =
        Checkpoint::new(&ckpt_dir, g).map_err(|e| format!("checkpoint dir unusable: {e}"))?;
    let resumed_from_manifest = ckpt
        .load()
        .map_err(|e| format!("manifest unreadable after the cancel: {e}"))?
        .is_some();

    // Resume in a fresh "process" without the token.
    let mut dev = new_dev(cfg);
    let resume_opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: backend,
        checkpoint: Some(CheckpointOptions {
            dir: ckpt_dir.clone(),
            resume: true,
        }),
        ..Default::default()
    };
    let result = apsp(g, &mut dev, &resume_opts)
        .map_err(|e| format!("resume after a cancel at check {cancel_after} failed: {e}"))?;
    check_exact(
        &result.store,
        &reference,
        &format!("after resuming a cancel at check {cancel_after}"),
    )?;
    if ckpt
        .load()
        .map_err(|e| format!("manifest unreadable after the resume: {e}"))?
        .is_some()
    {
        return Err("the resumed run left its checkpoint behind".into());
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(CancelReport {
        cancel_after_checks: cancel_after,
        resumed_from_manifest,
    })
}

/// Run one deadline cell: an already-expired deadline must abort the run
/// with the typed `DeadlineExceeded` kind at the first barrier, and a
/// rerun without the deadline must produce the exact matrix.
pub fn run_deadline_abort(
    case: &Case,
    algorithm: Algorithm,
    disk: bool,
    cfg: &RunnerConfig,
) -> Result<(), String> {
    let g = &case.graph;
    let reference = bgl_plus_apsp(g);
    let backend = backend_for(disk, cfg);
    let mut dev = new_dev(cfg);
    let opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: backend.clone(),
        supervision: SupervisionOptions {
            deadline_ms: Some(0),
            ..Default::default()
        },
        ..Default::default()
    };
    match apsp(g, &mut dev, &opts) {
        Ok(_) => return Err("an expired deadline must abort the run".into()),
        Err(e) if e.kind() == ApspErrorKind::DeadlineExceeded => {}
        Err(e) => return Err(format!("expected a typed deadline abort, got: {e}")),
    }
    let mut dev = new_dev(cfg);
    let clean_opts = ApspOptions {
        algorithm: Some(algorithm),
        storage: backend,
        ..Default::default()
    };
    let result = apsp(g, &mut dev, &clean_opts)
        .map_err(|e| format!("rerun without the deadline failed: {e}"))?;
    check_exact(&result.store, &reference, "after the deadline-free rerun")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Family;

    #[test]
    fn one_stall_cell_holds_and_is_deterministic() {
        let cfg = RunnerConfig::default();
        let case = Case::generate(Family::ErdosRenyi, 0x5AB1);
        let a = run_stall_fallback(&case, Algorithm::Johnson, false, 3, &cfg)
            .expect("stall–fallback cell must hold");
        assert_eq!(a.from, Algorithm::Johnson);
        assert_ne!(a.to, Algorithm::Johnson);
        let b = run_stall_fallback(&case, Algorithm::Johnson, false, 3, &cfg)
            .expect("repeat of the same cell must hold");
        assert_eq!(a, b, "same seed must replay the same event sequence");
    }

    #[test]
    fn one_cancel_cell_round_trips() {
        let cfg = RunnerConfig::default();
        let case = Case::generate(Family::ErdosRenyi, 0x5AB2);
        let report = run_cancel_resume(&case, Algorithm::FloydWarshall, false, 17, &cfg)
            .expect("cancel–resume cell must hold");
        assert!(report.cancel_after_checks >= 1);
        assert!(report.to_string().contains("exact"));
    }
}
