//! The seeded conformance corpus.
//!
//! One generator per family, all driven from a single corpus seed via
//! splitmix64 so `Corpus::standard(s)` is a pure function of `s`. Sizes
//! are chosen so a full differential sweep (13 runs per case) stays in
//! test-suite time, while still forcing real out-of-core behaviour on
//! the runner's deliberately small device.

use apsp_cpu::johnson_reweight::{Reweighted, SignedEdge};
use apsp_graph::generators::{gnp, grid_2d, rmat, star, GridOptions, RmatParams, WeightRange};
use apsp_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The graph families the corpus covers, each chosen for a distinct
/// failure mode it historically provokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// R-MAT scale-free: skewed degrees, the paper's synthetic workload.
    Rmat,
    /// Erdős–Rényi: uniform density, the "no structure" control.
    ErdosRenyi,
    /// 2-D lattice: small separators, the boundary algorithm's best case.
    Grid,
    /// Hub-and-spoke: a few extreme-degree vertices (dynamic-parallelism
    /// and partitioner stress).
    Star,
    /// Multiple components plus isolated vertices: `INF` handling.
    Disconnected,
    /// Johnson-reweighted signed graph whose cycles telescope to nearly
    /// zero: the result is dominated by zero-weight edges, the worst case
    /// for bucket-based SSSP and for tie-breaking between algorithms.
    NearNegativeCycle,
    /// One well-connected giant component plus isolated dust: the
    /// partition-based boundary algorithm has nothing to partition (the
    /// giant is one indivisible block), so it is structurally the wrong
    /// choice — the family that exercises the supervision fallback chain
    /// without any fault injection.
    PathologicalPartition,
}

impl Family {
    /// Every family, in corpus order.
    pub const ALL: [Family; 7] = [
        Family::Rmat,
        Family::ErdosRenyi,
        Family::Grid,
        Family::Star,
        Family::Disconnected,
        Family::NearNegativeCycle,
        Family::PathologicalPartition,
    ];
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Family::Rmat => "rmat",
            Family::ErdosRenyi => "erdos-renyi",
            Family::Grid => "grid",
            Family::Star => "star",
            Family::Disconnected => "disconnected",
            Family::NearNegativeCycle => "near-negative-cycle",
            Family::PathologicalPartition => "pathological-partition",
        };
        f.write_str(name)
    }
}

/// One corpus entry: a graph plus the provenance needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Case {
    /// `"<family>-<seed>"`, the handle every report prints.
    pub name: String,
    /// The family that generated the graph.
    pub family: Family,
    /// The per-case seed (derived from the corpus seed; feeding it back
    /// to [`Case::generate`] reproduces the graph exactly).
    pub seed: u64,
    /// The generated graph.
    pub graph: CsrGraph,
}

impl Case {
    /// Generate the canonical case of `family` for `seed`.
    pub fn generate(family: Family, seed: u64) -> Case {
        let w = WeightRange::default();
        let graph = match family {
            Family::Rmat => rmat(96, 950, RmatParams::scale_free(), w, seed),
            Family::ErdosRenyi => gnp(90, 0.06, w, seed),
            Family::Grid => grid_2d(9, 10, GridOptions::default(), w, seed),
            Family::Star => star(100, 3, w, seed),
            Family::Disconnected => disconnected(88, seed),
            Family::NearNegativeCycle => near_negative_cycle(80, seed),
            Family::PathologicalPartition => pathological_partition(96, seed),
        };
        Case {
            name: format!("{family}-{seed:#x}"),
            family,
            seed,
            graph,
        }
    }
}

/// A reproducible set of cases.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The seed everything derives from.
    pub seed: u64,
    /// The cases, family order preserved.
    pub cases: Vec<Case>,
}

impl Corpus {
    /// One case per family — the tier-1 conformance set.
    pub fn standard(seed: u64) -> Corpus {
        Corpus::extended(seed, 1)
    }

    /// `per_family` cases per family with independent derived seeds — the
    /// nightly set.
    pub fn extended(seed: u64, per_family: usize) -> Corpus {
        let mut state = seed;
        let mut cases = Vec::with_capacity(Family::ALL.len() * per_family);
        for round in 0..per_family {
            for family in Family::ALL {
                let case_seed = splitmix64(&mut state);
                let mut case = Case::generate(family, case_seed);
                if per_family > 1 {
                    case.name = format!("{}-r{round}", case.name);
                }
                cases.push(case);
            }
        }
        Corpus { seed, cases }
    }
}

/// Two Erdős–Rényi islands plus two isolated vertices — most pairs are
/// unreachable, so every algorithm's `INF` plumbing is load-bearing.
fn disconnected(n: usize, seed: u64) -> CsrGraph {
    assert!(n >= 4);
    let w = WeightRange::default();
    let half = (n - 2) / 2;
    let a = gnp(half, 0.09, w, seed ^ 0xA);
    let b = gnp(n - 2 - half, 0.09, w, seed ^ 0xB);
    let mut builder = GraphBuilder::with_capacity(n, a.num_edges() + b.num_edges());
    for e in a.edges() {
        builder.add_edge(e.src, e.dst, e.weight);
    }
    let off = half as VertexId;
    for e in b.edges() {
        builder.add_edge(e.src + off, e.dst + off, e.weight);
    }
    // Vertices n−2 and n−1 stay isolated.
    builder.build()
}

/// Signed graph with weights `base + p(u) − p(v)` (tiny `base`, random
/// potentials): every cycle telescopes to `Σ base ≈ 0`, so it is free of
/// negative cycles by construction but arbitrarily close to one. The
/// Johnson reweighting front-end turns it into the non-negative graph the
/// GPU paths require; a large share of the reweighted edges collapses to
/// zero weight.
fn near_negative_cycle(n: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let p: Vec<i64> = (0..n).map(|_| rng.gen_range(-40..40i64)).collect();
    let m = 8 * n;
    let edges: Vec<SignedEdge> = (0..m)
        .map(|_| {
            let src = rng.gen_range(0..n as u32);
            let mut dst = rng.gen_range(0..n as u32);
            if dst == src {
                dst = (dst + 1) % n as u32;
            }
            let base = rng.gen_range(0..3i64);
            SignedEdge {
                src,
                dst,
                weight: base + p[src as usize] - p[dst as usize],
            }
        })
        .collect();
    Reweighted::new(n, &edges)
        .expect("telescoping construction has no negative cycles")
        .graph
}

/// One dense-ish giant component holding ~85% of the vertices plus
/// isolated dust. A component-based partitioner sees a single indivisible
/// block whose working set is essentially the whole matrix — halving the
/// component count never helps, so on a small device the boundary
/// algorithm fails structurally (not through an injected fault) and only
/// a fallback to another algorithm can finish the run.
fn pathological_partition(n: usize, seed: u64) -> CsrGraph {
    let giant = (n * 85) / 100;
    let core = gnp(giant, 0.08, WeightRange::default(), seed ^ 0x6147);
    let mut builder = GraphBuilder::with_capacity(n, core.num_edges());
    for e in core.edges() {
        builder.add_edge(e.src, e.dst, e.weight);
    }
    // Vertices giant..n stay isolated dust.
    builder.build()
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_every_family_once() {
        let c = Corpus::standard(7);
        assert_eq!(c.cases.len(), Family::ALL.len());
        for (case, family) in c.cases.iter().zip(Family::ALL) {
            assert_eq!(case.family, family);
            assert!(case.graph.num_vertices() >= 80, "{}", case.name);
            case.graph.check_invariants().unwrap();
        }
    }

    #[test]
    fn corpus_is_a_pure_function_of_its_seed() {
        let a = Corpus::standard(42);
        let b = Corpus::standard(42);
        let c = Corpus::standard(43);
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.graph, y.graph);
        }
        assert!(a
            .cases
            .iter()
            .zip(&c.cases)
            .any(|(x, y)| x.graph != y.graph));
    }

    #[test]
    fn case_regenerates_from_printed_seed() {
        let c = Corpus::standard(0xC0FFEE);
        for case in &c.cases {
            let again = Case::generate(case.family, case.seed);
            assert_eq!(again.graph, case.graph, "{}", case.name);
        }
    }

    #[test]
    fn disconnected_has_unreachable_pairs_and_isolated_tail() {
        let case = Case::generate(Family::Disconnected, 5);
        let g = &case.graph;
        let n = g.num_vertices();
        assert!(apsp_graph::stats::connected_components(g) >= 3);
        assert_eq!(g.out_degree((n - 1) as VertexId), 0);
        assert_eq!(g.out_degree((n - 2) as VertexId), 0);
    }

    #[test]
    fn near_negative_cycle_is_zero_weight_heavy() {
        let case = Case::generate(Family::NearNegativeCycle, 11);
        let zeros = case.graph.edges().filter(|e| e.weight == 0).count();
        assert!(
            zeros * 4 >= case.graph.num_edges(),
            "only {zeros}/{} zero-weight edges",
            case.graph.num_edges()
        );
    }

    #[test]
    fn pathological_partition_is_one_giant_plus_dust() {
        let case = Case::generate(Family::PathologicalPartition, 21);
        let g = &case.graph;
        let n = g.num_vertices();
        assert!(n >= 80);
        // Lots of isolated dust around a single real component.
        let isolated = (0..n).filter(|&v| g.out_degree(v as VertexId) == 0).count();
        assert!(isolated >= n / 10, "only {isolated} isolated vertices");
        assert_eq!(
            apsp_graph::stats::connected_components(g),
            1 + isolated,
            "the non-dust vertices must form one giant component"
        );
    }

    #[test]
    fn extended_scales_and_stays_deterministic() {
        let c = Corpus::extended(9, 3);
        assert_eq!(c.cases.len(), 3 * Family::ALL.len());
        assert_eq!(c.cases[0].graph, Corpus::extended(9, 3).cases[0].graph);
        // Rounds use fresh seeds.
        assert_ne!(c.cases[0].graph, c.cases[Family::ALL.len()].graph);
    }
}
