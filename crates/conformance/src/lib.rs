//! Conformance and fault-injection harness for the out-of-core APSP
//! implementations.
//!
//! Three pieces, used together by `tests/` and the nightly CI job:
//!
//! * [`corpus`] — a seeded graph corpus spanning the families that break
//!   APSP codes in different ways (scale-free, uniform, lattice,
//!   hub-and-spoke, disconnected, near-negative-cycle reweightings);
//! * [`runner`] — the differential oracle: every case runs through the
//!   in-core baseline and all three out-of-core algorithms, crossed with
//!   `Memory`/`Disk` storage and transfer overlap on/off, and any
//!   disagreement is reported as a [`runner::Divergence`] pinpointing the
//!   first diverging cell, its tile, and the Floyd-Warshall pivot round
//!   that established the expected value;
//! * [`fault`] — deterministic fault plans (device allocation failures,
//!   short writes/reads, `ENOSPC`, latency) derived from a single seed,
//!   plus the harness asserting every algorithm either degrades
//!   gracefully to an exact result or fails with a typed
//!   [`apsp_core::ApspError`] *without corrupting the store*;
//! * [`crash`] — the kill–resume differential: every checkpointed
//!   algorithm killed at a seed-chosen store operation and resumed in a
//!   fresh device/store must reproduce the uninterrupted run's matrix
//!   bit-for-bit;
//! * [`multi`] — the fleet differential: the sharded multi-device
//!   executor across device counts, V100/K80 mixes, and storage
//!   backends must reproduce the single-device oracle bit-for-bit, stay
//!   makespan-monotone as devices are added, and survive kill–resume
//!   across *different* fleet shapes;
//! * [`calibration`] — the selector-calibration replay: the same graph
//!   run repeatedly against a persisted per-profile calibration store,
//!   asserting the selector's prediction error converges onto the
//!   realized time while every round's matrix stays bit-identical to an
//!   uncalibrated baseline;
//! * [`sdc`] — the silent-data-corruption matrix: seeded bit flips in
//!   the store's write path and in device uploads, run under active SDC
//!   guards, asserting every flip is either repaired to a bit-identical
//!   matrix or surfaced as typed
//!   [`apsp_core::ApspError::SilentCorruption`] — never a silently
//!   wrong result;
//! * [`supervision`] — the runtime-supervision matrix: cancelled and
//!   deadlined runs must fail typed and resume exactly, an injected
//!   kernel hang must trip the watchdog and fall back to an algorithm
//!   whose result is bit-identical to its clean run, and every event
//!   sequence must replay deterministically from its seed;
//! * [`service`] — the serving chaos harness: N concurrent seeded jobs
//!   (full and k-source partial queries) driven through
//!   [`apsp_core::ApspService`] with injected faults, tight deadlines,
//!   queue overload, and queued cancellations, asserting every job ends
//!   bit-identical-completed, typed-rejected, typed-failed, or
//!   cancelled — never wrong, never hung.
//!
//! Every report carries the seed that reproduces it; see the repository
//! README ("Testing & conformance") for the reproduction workflow.

pub mod calibration;
pub mod corpus;
pub mod crash;
pub mod fault;
pub mod multi;
pub mod runner;
pub mod sdc;
pub mod service;
pub mod supervision;

pub use calibration::{replay, ReplayReport, ReplayRound};
pub use corpus::{Case, Corpus, Family};
pub use crash::{run_kill_resume, CrashCellOptions, CrashReport};
pub use fault::{run_under_faults, Fault, FaultPlan, FaultRunOutcome};
pub use multi::{
    makespan_curve, run_multi_cell, run_multi_kill_resume, single_device_oracle, MultiCellReport,
    StoreKind,
};
pub use runner::{all_variants, run_case, CaseReport, Divergence, RunnerConfig, Variant};
pub use sdc::{run_under_bit_flip, FlipSite, SdcOutcome, SdcVerdict};
pub use service::{
    run_chaos, run_corrupt_cache_check, run_queued_cancel_residue, ChaosConfig, ChaosReport,
    JobVerdict, Terminal,
};
pub use supervision::{
    run_cancel_resume, run_deadline_abort, run_stall_fallback, CancelReport, StallFallbackReport,
};
