//! The multi-device (fleet) differential harness.
//!
//! Three contracts, each proven against the single-device oracle:
//!
//! * **Bit-identity** — [`run_multi_cell`]: the sharded executor on any
//!   fleet shape (device counts × V100/K80 mixes × Memory/Disk/sharded
//!   Disk × exec backends) must reproduce the single-device
//!   `ooc_boundary` matrix bit-for-bit (which is itself checked against
//!   the CPU reference).
//! * **Makespan monotonicity** — [`makespan_curve`]: on a homogeneous
//!   fleet, adding devices must never make the simulated makespan
//!   slower.
//! * **Kill–resume** — [`run_multi_kill_resume`]: a checkpointed
//!   multi-device run killed at a seed-chosen store operation and
//!   resumed on a *different* fleet shape must still produce the exact
//!   matrix — the commit cursor is device-count-independent.

use crate::corpus::{splitmix64, Case};
use crate::runner::RunnerConfig;
use apsp_core::multi_gpu::{ooc_boundary_multi, ooc_boundary_multi_checkpointed};
use apsp_core::ooc_boundary::ooc_boundary;
use apsp_core::options::BoundaryOptions;
use apsp_core::{ApspErrorKind, Checkpoint, StorageBackend, TileStore};
use apsp_cpu::{bgl_plus_apsp, DistMatrix};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

/// Where a fleet cell's tile store lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Host RAM.
    Memory,
    /// Single spill directory, default shard threshold — one file at
    /// conformance sizes.
    Disk,
    /// Spill directory with a tiny shard threshold, forcing the store
    /// across many files.
    DiskSharded,
}

impl StoreKind {
    fn backend(self, cfg: &RunnerConfig) -> StorageBackend {
        match self {
            StoreKind::Memory => StorageBackend::Memory,
            StoreKind::Disk => StorageBackend::Disk(cfg.scratch_dir.clone()),
            StoreKind::DiskSharded => StorageBackend::DiskSharded {
                dir: cfg.scratch_dir.clone(),
                // A few rows per shard at corpus sizes; still row-aligned.
                shard_bytes: 2048,
            },
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StoreKind::Memory => "memory",
            StoreKind::Disk => "disk",
            StoreKind::DiskSharded => "disk-sharded",
        })
    }
}

/// One fleet cell's outcome.
#[derive(Debug)]
pub struct MultiCellReport {
    /// Human-readable fleet description (`"v100+k80"`).
    pub fleet: String,
    /// Devices in the fleet.
    pub num_devices: usize,
    /// Barrier-synchronized makespan of the multi run.
    pub makespan_s: f64,
    /// dist₄ panels migrated off their dist₂ owner.
    pub stolen_panels: u32,
}

fn fleet_label(fleet: &[DeviceProfile]) -> String {
    fleet
        .iter()
        .map(|p| p.name.as_str())
        .collect::<Vec<_>>()
        .join("+")
}

fn sized(profile: &DeviceProfile, bytes: u64) -> DeviceProfile {
    profile.with_memory_bytes(bytes)
}

/// The single-device oracle: `ooc_boundary` on a V100 with the same
/// device budget, checked against the CPU reference before use.
pub fn single_device_oracle(
    case: &Case,
    opts: &BoundaryOptions,
    cfg: &RunnerConfig,
) -> Result<DistMatrix, String> {
    let mut dev = GpuDevice::new(sized(&DeviceProfile::v100(), cfg.device_bytes));
    let mut store = TileStore::new(case.graph.num_vertices(), &StorageBackend::Memory)
        .map_err(|e| format!("oracle store: {e}"))?;
    ooc_boundary(&mut dev, &case.graph, &mut store, opts)
        .map_err(|e| format!("single-device oracle failed on {}: {e}", case.name))?;
    let got = store
        .to_dist_matrix()
        .map_err(|e| format!("oracle store unreadable: {e}"))?;
    let reference = bgl_plus_apsp(&case.graph);
    if got != reference {
        return Err(format!(
            "single-device oracle diverges from the CPU reference on {} (seed {:#x})",
            case.name, case.seed
        ));
    }
    Ok(got)
}

/// Run one fleet cell and diff it against `oracle` bit-for-bit.
pub fn run_multi_cell(
    case: &Case,
    fleet: &[DeviceProfile],
    store_kind: StoreKind,
    opts: &BoundaryOptions,
    oracle: &DistMatrix,
    cfg: &RunnerConfig,
) -> Result<MultiCellReport, String> {
    let label = fleet_label(fleet);
    let exec = opts.exec;
    let mut devs: Vec<GpuDevice> = fleet
        .iter()
        .map(|p| GpuDevice::new(sized(p, cfg.device_bytes)))
        .collect();
    let mut store = TileStore::new(case.graph.num_vertices(), &store_kind.backend(cfg))
        .map_err(|e| format!("store ({store_kind}): {e}"))?;
    let stats = ooc_boundary_multi(&mut devs, &case.graph, &mut store, opts).map_err(|e| {
        format!(
            "multi run [{label}/{store_kind}/{exec:?}] failed on {}: {e}",
            case.name
        )
    })?;
    let got = store
        .to_dist_matrix()
        .map_err(|e| format!("multi store unreadable: {e}"))?;
    if &got != oracle {
        let n = oracle.n();
        let idx = (0..n * n)
            .find(|&i| got.as_slice()[i] != oracle.as_slice()[i])
            .unwrap();
        return Err(format!(
            "multi run [{label}/{store_kind}/{exec:?}] diverges from the single-device \
             oracle on {} at cell ({}, {}): {} vs {} (seed {:#x})",
            case.name,
            idx / n,
            idx % n,
            got.as_slice()[idx],
            oracle.as_slice()[idx],
            case.seed
        ));
    }
    Ok(MultiCellReport {
        fleet: label,
        num_devices: stats.num_devices,
        makespan_s: stats.sim_seconds,
        stolen_panels: stats.stolen_panels,
    })
}

/// The simulated makespan at each homogeneous fleet size — callers
/// assert the curve never rises.
///
/// The component count is pinned to `max(sizes)` (at least 8) so every
/// run schedules the *same* partition and only the fleet varies; left
/// free, the executor raises `k` to the device count, and a finer
/// partition has more boundary vertices — more total work, which would
/// confound the scheduling property being tested.
pub fn makespan_curve(
    case: &Case,
    sizes: &[usize],
    cfg: &RunnerConfig,
) -> Result<Vec<f64>, String> {
    let k = sizes.iter().copied().max().unwrap_or(1).max(8);
    let opts = BoundaryOptions {
        num_components: Some(k),
        ..Default::default()
    };
    let oracle = single_device_oracle(case, &opts, cfg)?;
    let mut curve = Vec::with_capacity(sizes.len());
    for &count in sizes {
        let fleet = vec![DeviceProfile::v100(); count];
        let report = run_multi_cell(case, &fleet, StoreKind::Memory, &opts, &oracle, cfg)?;
        curve.push(report.makespan_s);
    }
    Ok(curve)
}

/// Kill–resume across fleet shapes: a checkpointed multi-device run on
/// `kill_devices` devices is killed at a store operation drawn from
/// `crash_seed`, then resumed on `resume_devices` devices. The resumed
/// matrix must equal the uninterrupted run's bit-for-bit and the
/// checkpoint must be cleared.
pub fn run_multi_kill_resume(
    case: &Case,
    kill_devices: usize,
    resume_devices: usize,
    store_kind: StoreKind,
    crash_seed: u64,
    cfg: &RunnerConfig,
) -> Result<crate::crash::CrashReport, String> {
    let g = &case.graph;
    let n = g.num_vertices();
    let reference = bgl_plus_apsp(g);
    let opts = BoundaryOptions {
        // Enough components that several commit barriers land.
        num_components: Some(6),
        ..Default::default()
    };
    let ckpt_dir = cfg.scratch_dir.join(format!(
        "multi-crash-{}-{}to{}-{:x}",
        case.name, kill_devices, resume_devices, crash_seed
    ));
    let backend = store_kind.backend(cfg);
    let new_fleet = |count: usize| -> Vec<GpuDevice> {
        (0..count)
            .map(|_| GpuDevice::new(sized(&DeviceProfile::v100(), cfg.device_bytes)))
            .collect()
    };
    let new_store = || TileStore::new(n, &backend).map_err(|e| format!("store: {e}"));
    let ckpt = Checkpoint::new(&ckpt_dir, g).map_err(|e| format!("checkpoint dir: {e}"))?;
    ckpt.clear().map_err(|e| format!("stale checkpoint: {e}"))?;

    // Step 1: uninterrupted run — matrix A and the op budget.
    let mut devs = new_fleet(kill_devices);
    let mut store = new_store()?;
    store.arm_crash(u64::MAX);
    ooc_boundary_multi_checkpointed(&mut devs, g, &mut store, &opts, &ckpt)
        .map_err(|e| format!("uninterrupted multi run failed: {e}"))?;
    let total_ops = store.crash_ops();
    store.disarm_crash();
    let baseline = store
        .to_dist_matrix()
        .map_err(|e| format!("baseline store unreadable: {e}"))?;
    if baseline != reference {
        return Err(format!(
            "uninterrupted multi run diverges from the reference on {}",
            case.name
        ));
    }
    if ckpt.load().map_err(|e| e.to_string())?.is_some() {
        return Err("the uninterrupted run left its checkpoint behind".into());
    }
    if total_ops < 2 {
        return Err(format!(
            "run too small to interrupt ({total_ops} store ops)"
        ));
    }

    // Step 2: the kill.
    let mut s = crash_seed;
    let crash_after = 1 + splitmix64(&mut s) % (total_ops - 1);
    let mut devs = new_fleet(kill_devices);
    let mut store = new_store()?;
    store.arm_crash(crash_after);
    let interrupted_kind =
        match ooc_boundary_multi_checkpointed(&mut devs, g, &mut store, &opts, &ckpt) {
            Err(e) => e.kind(),
            Ok(_) => {
                return Err(format!(
                    "armed crash after {crash_after}/{total_ops} ops never fired"
                ))
            }
        };
    if interrupted_kind != ApspErrorKind::Storage {
        return Err(format!(
            "kill surfaced as {interrupted_kind:?}, expected Storage"
        ));
    }
    drop(store);
    let resumed_from_manifest = ckpt.load().map_err(|e| e.to_string())?.is_some();

    // Step 3: resume on a different fleet shape.
    let mut devs = new_fleet(resume_devices);
    let mut store = new_store()?;
    ooc_boundary_multi_checkpointed(&mut devs, g, &mut store, &opts, &ckpt)
        .map_err(|e| format!("resume on {resume_devices} devices failed: {e}"))?;
    let resumed = store
        .to_dist_matrix()
        .map_err(|e| format!("resumed store unreadable: {e}"))?;
    if resumed != baseline {
        return Err(format!(
            "resume on {resume_devices} devices after a kill at op \
             {crash_after}/{total_ops} on {kill_devices} devices is not bit-identical \
             (case {}, seed {:#x})",
            case.name, case.seed
        ));
    }
    if ckpt.load().map_err(|e| e.to_string())?.is_some() {
        return Err("the resumed run left its checkpoint behind".into());
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(crate::crash::CrashReport {
        total_ops,
        crash_after_ops: crash_after,
        interrupted_kind,
        resumed_from_manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Family;

    #[test]
    fn one_heterogeneous_cell_round_trips() {
        let cfg = RunnerConfig::default();
        let case = Case::generate(Family::Grid, 0xF1EE7);
        let oracle = single_device_oracle(&case, &BoundaryOptions::default(), &cfg).unwrap();
        let fleet = [DeviceProfile::v100(), DeviceProfile::k80()];
        let report = run_multi_cell(
            &case,
            &fleet,
            StoreKind::Memory,
            &BoundaryOptions::default(),
            &oracle,
            &cfg,
        )
        .unwrap();
        assert_eq!(report.num_devices, 2);
        assert_eq!(report.fleet, "Tesla V100+Tesla K80");
    }
}
