//! Deterministic fault plans and the graceful-degradation harness.
//!
//! A [`FaultPlan`] is a pure function of its seed: it schedules device
//! allocation failures (absorbed by the algorithms' retry drivers) and
//! disk faults (short writes/reads, `ENOSPC`, latency — fed to
//! [`TileStore::arm_faults`]). [`run_under_faults`] runs one algorithm
//! under a plan and classifies the outcome:
//!
//! * the run degrades gracefully and the matrix is **exact**, or
//! * the run fails with a typed [`ApspError`] and the store is **not
//!   corrupted** — every cell is still an upper bound of the true
//!   distance (`INF`, the zero diagonal, or a real path weight), and
//!   re-running after the fault clears converges to the exact matrix —
//! * anything else is [`FaultRunOutcome::Corrupted`], a harness failure.

use crate::corpus::{splitmix64, Case};
use crate::runner::RunnerConfig;
use apsp_core::ooc_boundary::ooc_boundary;
use apsp_core::ooc_fw::{init_store_from_graph, ooc_floyd_warshall};
use apsp_core::ooc_johnson::ooc_johnson;
use apsp_core::options::{Algorithm, BoundaryOptions, FwOptions, JohnsonOptions};
use apsp_core::{ApspError, ApspErrorKind, DiskFault, DiskFaultPlan, StorageBackend, TileStore};
use apsp_cpu::bgl_plus_apsp;
use apsp_gpu_sim::{DeviceProfile, GpuDevice};

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The `kth` subsequent device allocation fails (1-based).
    AllocFail {
        /// Which future allocation fails.
        kth: u64,
    },
    /// Positional write `op` persists half its bytes, then errors.
    ShortWrite {
        /// 0-based write-op ordinal.
        op: u64,
    },
    /// Positional read `op` fills half its buffer, then errors.
    ShortRead {
        /// 0-based read-op ordinal.
        op: u64,
    },
    /// Positional write `op` fails up front with `ENOSPC`.
    Enospc {
        /// 0-based write-op ordinal.
        op: u64,
    },
    /// Positional write `op` stalls, then succeeds.
    Latency {
        /// 0-based write-op ordinal.
        op: u64,
        /// Stall length.
        micros: u64,
    },
    /// Positional write `op` hangs in *simulated* time: the op succeeds,
    /// the host never sleeps, and the hang is observable only through an
    /// attached supervisor's io-stall clock (deadline and progress
    /// budgets both see it).
    Hang {
        /// 0-based write-op ordinal.
        op: u64,
        /// Simulated hang length.
        micros: u64,
    },
    /// Silent data corruption: one bit of the row written by store write
    /// op `ordinal` flips *after* the write lands, with no error reported
    /// anywhere. Unlike every other kind this fault is invisible to the
    /// I/O layer — it is exercised by [`crate::sdc`]'s harness (which
    /// arms an SDC guard), not by [`run_under_faults`], whose
    /// store-uncorrupted contract a silent flip violates by design.
    BitFlip {
        /// 0-based store write-op ordinal whose row is corrupted.
        ordinal: u64,
        /// Which bit of the row's byte span flips.
        bit: u64,
    },
}

/// A deterministic schedule of faults derived from one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed that regenerates this exact plan.
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Derive a plan covering every fault kind, with positions drawn
    /// deterministically from `seed`. Same seed ⇒ same plan, always.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let mut draw = |lo: u64, span: u64| lo + splitmix64(&mut s) % span;
        // Disk ordinals stay low enough to land inside a corpus-sized
        // run (store init alone issues n ≈ 100 writes).
        let faults = vec![
            Fault::AllocFail { kth: draw(1, 6) },
            Fault::ShortWrite { op: draw(0, 60) },
            Fault::Enospc { op: draw(120, 60) },
            Fault::ShortRead { op: draw(0, 40) },
            Fault::Latency {
                op: draw(60, 40),
                micros: draw(1, 200),
            },
            Fault::Hang {
                op: draw(100, 20),
                micros: draw(1_000, 9_000),
            },
        ];
        FaultPlan { seed, faults }
    }

    /// Whether the plan contains disk faults (and thus needs a
    /// `Disk`-backed store to be observable). Bit flips corrupt the
    /// store's *contents*, not its I/O, and fire on `Memory` stores too.
    pub fn has_disk_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| !matches!(f, Fault::AllocFail { .. } | Fault::BitFlip { .. }))
    }

    /// The distinct fault kinds scheduled (for coverage assertions).
    pub fn kinds(&self) -> usize {
        let mut k = [false; 7];
        for f in &self.faults {
            k[match f {
                Fault::AllocFail { .. } => 0,
                Fault::ShortWrite { .. } => 1,
                Fault::ShortRead { .. } => 2,
                Fault::Enospc { .. } => 3,
                Fault::Latency { .. } => 4,
                Fault::Hang { .. } => 5,
                Fault::BitFlip { .. } => 6,
            }] = true;
        }
        k.iter().filter(|b| **b).count()
    }

    /// The disk half of the plan in [`TileStore`] form.
    pub fn disk_plan(&self) -> DiskFaultPlan {
        let mut plan = DiskFaultPlan::default();
        for f in &self.faults {
            match *f {
                Fault::ShortWrite { op } => plan.write_faults.push((op, DiskFault::ShortWrite)),
                Fault::Enospc { op } => plan.write_faults.push((op, DiskFault::Enospc)),
                Fault::Latency { op, micros } => plan
                    .write_faults
                    .push((op, DiskFault::LatencyMicros(micros))),
                Fault::Hang { op, micros } => {
                    plan.write_faults.push((op, DiskFault::HangMicros(micros)))
                }
                Fault::ShortRead { op } => plan.read_faults.push((op, DiskFault::ShortRead)),
                Fault::AllocFail { .. } | Fault::BitFlip { .. } => {}
            }
        }
        plan
    }

    /// Arm the device half of the plan.
    pub fn arm_device(&self, dev: &GpuDevice) {
        for f in &self.faults {
            if let Fault::AllocFail { kth } = f {
                dev.inject_alloc_failure(*kth);
            }
        }
    }

    /// Arm the silent-corruption half of the plan on a store. Only
    /// meaningful when an SDC guard is (or will be) active on `store`;
    /// [`crate::sdc::run_under_bit_flip`] is the harness that does both.
    pub fn arm_store(&self, store: &mut TileStore) {
        for f in &self.faults {
            if let Fault::BitFlip { ordinal, bit } = f {
                store.arm_bit_flip(*ordinal, *bit);
            }
        }
    }
}

/// How one algorithm behaved under a fault plan.
#[derive(Debug)]
pub enum FaultRunOutcome {
    /// The run completed (absorbing any faults via its retry driver) and
    /// the matrix equals the reference exactly.
    Exact {
        /// Restarts the retry driver reported.
        retries: u32,
    },
    /// The run failed with a typed error, the store held only valid
    /// upper bounds afterwards, and re-running after the faults cleared
    /// produced the exact matrix.
    FailedThenRecovered {
        /// The typed classification of the failure.
        kind: ApspErrorKind,
    },
    /// The harness caught a wrong value — the real failure mode the
    /// fault machinery exists to rule out.
    Corrupted {
        /// What was wrong.
        detail: String,
    },
}

impl FaultRunOutcome {
    /// Whether the algorithm behaved acceptably (exact result or a typed
    /// failure without corruption).
    pub fn is_acceptable(&self) -> bool {
        !matches!(self, FaultRunOutcome::Corrupted { .. })
    }
}

fn run_algorithm(
    algorithm: Algorithm,
    dev: &mut GpuDevice,
    g: &apsp_graph::CsrGraph,
    store: &mut TileStore,
) -> Result<u32, ApspError> {
    match algorithm {
        Algorithm::FloydWarshall => {
            init_store_from_graph(g, store)?;
            Ok(ooc_floyd_warshall(dev, store, &FwOptions::default())?.retries)
        }
        Algorithm::Johnson => Ok(ooc_johnson(dev, g, store, &JohnsonOptions::default())?.retries),
        Algorithm::Boundary => {
            Ok(ooc_boundary(dev, g, store, &BoundaryOptions::default())?.retries)
        }
    }
}

/// Run `algorithm` on `case` with `plan` armed, classify the outcome, and
/// verify the no-corruption contract either way.
pub fn run_under_faults(
    case: &Case,
    algorithm: Algorithm,
    plan: &FaultPlan,
    cfg: &RunnerConfig,
) -> FaultRunOutcome {
    let g = &case.graph;
    let n = g.num_vertices();
    let reference = bgl_plus_apsp(g);
    let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
    let backend = if plan.has_disk_faults() {
        StorageBackend::Disk(cfg.scratch_dir.clone())
    } else {
        StorageBackend::Memory
    };
    let mut store = match TileStore::new(n, &backend) {
        Ok(s) => s,
        Err(e) => {
            return FaultRunOutcome::Corrupted {
                detail: format!("store creation failed before any fault was armed: {e}"),
            }
        }
    };
    store.arm_faults(plan.disk_plan());
    plan.arm_device(&dev);

    let first = run_algorithm(algorithm, &mut dev, g, &mut store);
    store.disarm_faults();
    dev.clear_alloc_failure();

    match first {
        Ok(retries) => match check_exact(&store, &reference) {
            Ok(()) => FaultRunOutcome::Exact { retries },
            Err(detail) => FaultRunOutcome::Corrupted { detail },
        },
        Err(e) => {
            let kind = e.kind();
            // No cell may drop below the true distance: everything in the
            // store must still be INF, the diagonal, or a real path weight.
            for i in 0..n {
                let row = match store.read_row(i) {
                    Ok(r) => r,
                    Err(io) => {
                        return FaultRunOutcome::Corrupted {
                            detail: format!("row {i} unreadable after disarm: {io}"),
                        }
                    }
                };
                if let Some(j) = (0..n).find(|&j| row[j] < reference.get(i, j)) {
                    return FaultRunOutcome::Corrupted {
                        detail: format!(
                            "cell ({i}, {j}) = {} fell below the true distance {} \
                             after a {kind:?} failure",
                            row[j],
                            reference.get(i, j)
                        ),
                    };
                }
            }
            // The faults are gone; the same store must now converge.
            match run_algorithm(algorithm, &mut dev, g, &mut store) {
                Ok(_) => match check_exact(&store, &reference) {
                    Ok(()) => FaultRunOutcome::FailedThenRecovered { kind },
                    Err(detail) => FaultRunOutcome::Corrupted { detail },
                },
                Err(e2) => FaultRunOutcome::Corrupted {
                    detail: format!("re-run after disarm failed too: {e2}"),
                },
            }
        }
    }
}

fn check_exact(store: &TileStore, reference: &apsp_cpu::DistMatrix) -> Result<(), String> {
    let got = store
        .to_dist_matrix()
        .map_err(|e| format!("store unreadable: {e}"))?;
    if &got == reference {
        return Ok(());
    }
    let n = reference.n();
    let idx = (0..n * n)
        .find(|&i| got.as_slice()[i] != reference.as_slice()[i])
        .unwrap();
    Err(format!(
        "cell ({}, {}) = {}, expected {}",
        idx / n,
        idx % n,
        got.as_slice()[idx],
        reference.as_slice()[idx]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        let a = FaultPlan::from_seed(99);
        let b = FaultPlan::from_seed(99);
        let c = FaultPlan::from_seed(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.kinds() >= 3, "plan must cover ≥3 fault kinds: {a:?}");
        assert!(a.has_disk_faults());
    }

    #[test]
    fn disk_plan_routes_directions_correctly() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                Fault::ShortWrite { op: 3 },
                Fault::ShortRead { op: 5 },
                Fault::Enospc { op: 7 },
                Fault::Latency { op: 9, micros: 11 },
                Fault::Hang { op: 13, micros: 17 },
                Fault::AllocFail { kth: 1 },
            ],
        };
        let disk = plan.disk_plan();
        assert_eq!(disk.write_faults.len(), 4);
        assert!(disk.write_faults.contains(&(13, DiskFault::HangMicros(17))));
        assert_eq!(disk.read_faults, vec![(5, DiskFault::ShortRead)]);
    }
}
