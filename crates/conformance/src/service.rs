//! The service chaos harness: N concurrent seeded jobs — full-matrix
//! and k-source partial queries over a hot-graph pool — driven through
//! [`ApspService`] with injected device faults, tight deadlines, queue
//! overload, and queued cancellations.
//!
//! The contract ([`run_chaos`]): every job terminates in exactly one of
//!
//! * **bit-identical-completed** — its rows equal the serial
//!   `bgl_plus_apsp` oracle (full jobs row-for-row, partial jobs against
//!   the oracle rows of their requested sources, in request order);
//! * **typed-rejected** — `QueueFull`/`Busy` at admission, carrying a
//!   retry-after hint;
//! * **typed-failed** — a typed [`ApspErrorKind`] (deadline, silent
//!   corruption, allocation) with the sibling jobs' bits untouched;
//! * **cancelled** — a queued cancellation that left zero residue.
//!
//! Never a wrong bit, never a hang: after `run_until_idle` no job may
//! remain `Queued`, and every deadline is watchdog-bounded by the trace
//! generator. Two runs of the same [`ChaosConfig`] must produce equal
//! [`ChaosReport`]s — all clocks are simulated and every draw is seeded.

use std::collections::BTreeMap;
use std::path::PathBuf;

use apsp_core::service::trace::{self, TraceConfig, TraceJob};
use apsp_core::{
    graph_fingerprint, ApspErrorKind, ApspService, CompletedJob, JobId, JobSpec, JobState,
    ServiceConfig, ServiceCounters, ServiceErrorKind,
};
use apsp_cpu::{bgl_plus_apsp, DistMatrix};
use apsp_gpu_sim::DeviceProfile;

/// Knobs for one chaos soak.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The seeded job trace (jobs, fault/deadline/cancel mix).
    pub trace: TraceConfig,
    /// Fleet size.
    pub devices: usize,
    /// Admission-queue bound — kept *below* the job count so the soak
    /// always exercises the overload ladder.
    pub queue_capacity: usize,
    /// Result-cache capacity.
    pub cache_capacity: usize,
    /// Device memory: small enough that full jobs batch.
    pub device_bytes: u64,
    /// Slow the fleet 1000× (and shrink memory to 32 KiB) so the
    /// trace's millisecond deadlines genuinely expire — without this,
    /// trace-pool graphs finish in ~0.5 ms of simulated time and the
    /// deadline/expiry arm of the ladder never fires.
    pub slow_fleet: bool,
    /// Scratch root for service-managed checkpoints. Wiped at the start
    /// of every run so repeats are bit-for-bit comparable.
    pub scratch_dir: PathBuf,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            trace: TraceConfig::default(),
            devices: 2,
            queue_capacity: 5,
            cache_capacity: 8,
            device_bytes: 512 << 10,
            slow_fleet: true,
            scratch_dir: std::env::temp_dir().join("apsp-service-chaos"),
        }
    }
}

/// How one traced job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminal {
    /// Completed and verified bit-identical to the oracle.
    Completed {
        /// Served from the result cache without touching a device.
        from_cache: bool,
    },
    /// Failed typed; the compute error keeps its [`ApspErrorKind`].
    Failed {
        /// The typed classification.
        kind: ApspErrorKind,
        /// A checkpoint survives for warm resubmission.
        checkpoint_kept: bool,
    },
    /// Cancelled while still queued.
    Cancelled,
    /// Turned away typed at every admission attempt.
    Rejected,
}

/// One job's verdict — everything in here is seed-derived, so two runs
/// of the same config must produce equal verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct JobVerdict {
    /// Index in the trace.
    pub index: usize,
    /// `"full"` or `"sources"`.
    pub kind: &'static str,
    /// Typed rejections received across admission attempts (empty when
    /// the first submit was admitted or served from cache).
    pub rejections: Vec<ServiceErrorKind>,
    /// The final disposition.
    pub terminal: Terminal,
}

/// The soak's outcome: per-job verdicts plus the service counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// One verdict per traced job, in trace order.
    pub verdicts: Vec<JobVerdict>,
    /// The service's final counters.
    pub counters: ServiceCounters,
    /// Simulated seconds the busiest fleet slot accumulated.
    pub sim_seconds: f64,
}

impl ChaosReport {
    /// Count of verdicts matching `f`.
    fn count(&self, f: impl Fn(&Terminal) -> bool) -> usize {
        self.verdicts.iter().filter(|v| f(&v.terminal)).count()
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs: {} completed ({} cached), {} failed typed, {} cancelled, \
             {} rejected — zero wrong bits, zero hangs",
            self.verdicts.len(),
            self.count(|t| matches!(t, Terminal::Completed { .. })),
            self.count(|t| matches!(t, Terminal::Completed { from_cache: true })),
            self.count(|t| matches!(t, Terminal::Failed { .. })),
            self.count(|t| matches!(t, Terminal::Cancelled)),
            self.count(|t| matches!(t, Terminal::Rejected)),
        )
    }
}

fn spec_tag(spec: &JobSpec) -> &'static str {
    match spec {
        JobSpec::Full => "full",
        JobSpec::Sources(_) => "sources",
    }
}

fn service_for(cfg: &ChaosConfig) -> ApspService {
    let profile = if cfg.slow_fleet {
        // 1000× slower and 32 KiB of memory: trace-pool runs land in
        // the seconds regime, across several batch commits, where the
        // trace's 1–50 ms deadlines can actually carve.
        let mut slow = DeviceProfile::v100().with_memory_bytes(32 << 10);
        slow.compute_ops_per_sec /= 1e3;
        slow.mem_bandwidth /= 1e3;
        slow.h2d_bytes_per_sec /= 1e3;
        slow.d2h_bytes_per_sec /= 1e3;
        slow.kernel_launch_overhead *= 1e3;
        slow.dynamic_launch_overhead *= 1e3;
        slow.transfer_latency *= 1e3;
        slow
    } else {
        DeviceProfile::v100().with_memory_bytes(cfg.device_bytes)
    };
    ApspService::new(ServiceConfig {
        devices: vec![profile; cfg.devices.max(1)],
        queue_capacity: cfg.queue_capacity,
        cache_capacity: cfg.cache_capacity,
        checkpoint_root: Some(cfg.scratch_dir.clone()),
        admission_control: true,
    })
}

/// Verify a completed job's bits against the memoized serial oracle.
fn verify_bits(
    oracles: &mut BTreeMap<u64, DistMatrix>,
    tj: &TraceJob,
    index: usize,
    done: &CompletedJob,
) -> Result<(), String> {
    let g = &tj.request.graph;
    let n = g.num_vertices();
    let reference = oracles
        .entry(graph_fingerprint(g))
        .or_insert_with(|| bgl_plus_apsp(g));
    match &tj.request.spec {
        JobSpec::Full => {
            if done.rows.rows() != n {
                return Err(format!(
                    "job {index}: full result has {} rows, expected {n}",
                    done.rows.rows()
                ));
            }
            for i in 0..n {
                if done.rows.row(i) != reference.row(i) {
                    return Err(format!("job {index}: WRONG BITS in full row {i}"));
                }
            }
        }
        JobSpec::Sources(srcs) => {
            if done.rows.rows() != srcs.len() {
                return Err(format!(
                    "job {index}: partial result has {} rows, expected {}",
                    done.rows.rows(),
                    srcs.len()
                ));
            }
            for (ri, &s) in srcs.iter().enumerate() {
                if done.rows.row(ri) != reference.row(s as usize) {
                    return Err(format!(
                        "job {index}: WRONG BITS in partial row {ri} (source {s})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Run one chaos soak. See the module docs for the contract; any
/// violation (wrong bits, a hang, an untyped rejection) is an `Err`
/// naming the offending job.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let _ = std::fs::remove_dir_all(&cfg.scratch_dir);
    let jobs = trace::seeded_jobs(&cfg.trace);
    let mut svc = service_for(cfg);
    let mut oracles: BTreeMap<u64, DistMatrix> = BTreeMap::new();
    let mut handles: Vec<(Option<JobId>, Vec<ServiceErrorKind>)> = Vec::with_capacity(jobs.len());

    // Wave 1: submit everything, pumping every third submit so the
    // queue churns (some jobs land on a busy fleet, some on a full
    // queue, some on a warm cache).
    for (i, tj) in jobs.iter().enumerate() {
        match svc.submit(tj.request.clone()) {
            Ok(id) => {
                if tj.cancel_while_queued {
                    // `AlreadyTerminal` is fine — a cache hit completed
                    // at submit and there is nothing left to cancel.
                    svc.cancel(id)
                        .map_err(|e| format!("job {i}: cancel of a live handle failed: {e}"))?;
                }
                handles.push((Some(id), Vec::new()));
            }
            Err(e) => {
                let kind = e.kind();
                if !matches!(kind, ServiceErrorKind::QueueFull | ServiceErrorKind::Busy) {
                    return Err(format!(
                        "job {i}: admission rejection is not typed overload: {e}"
                    ));
                }
                if e.retry_after_ms().is_none() {
                    return Err(format!("job {i}: overload rejection lost its retry hint"));
                }
                handles.push((None, vec![kind]));
            }
        }
        if i % 3 == 2 {
            svc.pump_one();
        }
    }
    svc.run_until_idle();

    // Wave 2: honour the retry-after hint — resubmit every rejected job
    // once against the drained queue (and the now-warm cache).
    for (i, tj) in jobs.iter().enumerate() {
        if handles[i].0.is_none() {
            match svc.submit(tj.request.clone()) {
                Ok(id) => handles[i].0 = Some(id),
                Err(e) => handles[i].1.push(e.kind()),
            }
        }
    }
    svc.run_until_idle();

    let mut verdicts = Vec::with_capacity(jobs.len());
    for (i, tj) in jobs.iter().enumerate() {
        let (handle, rejections) = &handles[i];
        let terminal = match handle {
            None => Terminal::Rejected,
            Some(id) => match svc
                .state(*id)
                .ok_or_else(|| format!("job {i}: handle {id} vanished from the service"))?
            {
                JobState::Queued => {
                    return Err(format!(
                        "job {i}: still queued after run_until_idle — a hang"
                    ));
                }
                JobState::Completed(done) => {
                    verify_bits(&mut oracles, tj, i, done)?;
                    Terminal::Completed {
                        from_cache: done.from_cache,
                    }
                }
                JobState::Failed(fj) => Terminal::Failed {
                    kind: fj.kind,
                    checkpoint_kept: fj.checkpoint_kept,
                },
                JobState::Cancelled { .. } => Terminal::Cancelled,
            },
        };
        verdicts.push(JobVerdict {
            index: i,
            kind: spec_tag(&tj.request.spec),
            rejections: rejections.clone(),
            terminal,
        });
    }

    Ok(ChaosReport {
        verdicts,
        counters: svc.counters(),
        sim_seconds: svc.now_s(),
    })
}

/// Satellite coverage: cancelling a job that is still queued must return
/// typed-immediate, leave zero checkpoint/spill residue under the
/// service's scratch root, and leave sibling jobs' bits untouched
/// (proven against a control service that never saw the cancelled job).
pub fn run_queued_cancel_residue(scratch_dir: &std::path::Path) -> Result<(), String> {
    use apsp_core::{CancelOutcome, JobRequest};

    let cfg = ChaosConfig {
        scratch_dir: scratch_dir.to_path_buf(),
        // One device and no interleaved pumping: everything stays queued
        // until we say go, so the cancel provably lands pre-admission.
        devices: 1,
        queue_capacity: 16,
        ..ChaosConfig::default()
    };
    let _ = std::fs::remove_dir_all(&cfg.scratch_dir);
    let pool = trace::graph_pool(&cfg.trace);
    let (ga, gb) = (pool[0].clone(), pool[1 % pool.len()].clone());

    let mut svc = service_for(&cfg);
    let a = svc
        .submit(JobRequest::full(ga.clone()))
        .map_err(|e| format!("sibling A rejected: {e}"))?;
    let victim = svc
        .submit(JobRequest::full(gb.clone()))
        .map_err(|e| format!("victim rejected: {e}"))?;
    let c = svc
        .submit(JobRequest::sources(ga.clone(), vec![0, 7, 3]))
        .map_err(|e| format!("sibling C rejected: {e}"))?;

    // The cancel must be typed and immediate — no pumping has happened.
    match svc.cancel(victim) {
        Ok(CancelOutcome::Dequeued) => {}
        Ok(CancelOutcome::AlreadyTerminal) => {
            return Err("queued job reported terminal before any pump".into())
        }
        Err(e) => return Err(format!("queued cancel failed: {e}")),
    }
    if !matches!(svc.state(victim), Some(JobState::Cancelled { .. })) {
        return Err(format!(
            "victim state after cancel: {:?}",
            svc.state(victim).map(|s| s.tag())
        ));
    }
    svc.run_until_idle();

    // Zero residue: the cancelled job never touched a device or disk,
    // and the completed siblings sweep their own checkpoint dirs.
    if let Ok(mut entries) = std::fs::read_dir(&cfg.scratch_dir) {
        if let Some(e) = entries.next() {
            return Err(format!("checkpoint residue after the cancel: {e:?}"));
        }
    }

    // Siblings must be bit-identical to a control service that never
    // saw the cancelled job at all.
    let control_dir = cfg.scratch_dir.with_extension("control");
    let _ = std::fs::remove_dir_all(&control_dir);
    let mut control = service_for(&ChaosConfig {
        scratch_dir: control_dir.clone(),
        ..cfg.clone()
    });
    let ca = control
        .submit(JobRequest::full(ga.clone()))
        .map_err(|e| format!("control A rejected: {e}"))?;
    let cc = control
        .submit(JobRequest::sources(ga, vec![0, 7, 3]))
        .map_err(|e| format!("control C rejected: {e}"))?;
    control.run_until_idle();
    for (name, chaotic, clean) in [("A", a, ca), ("C", c, cc)] {
        let (Some(JobState::Completed(x)), Some(JobState::Completed(y))) =
            (svc.state(chaotic), control.state(clean))
        else {
            return Err(format!("sibling {name} did not complete on both services"));
        };
        if x.rows.data != y.rows.data {
            return Err(format!("queued cancel perturbed sibling {name}'s bits"));
        }
    }
    let _ = std::fs::remove_dir_all(&cfg.scratch_dir);
    let _ = std::fs::remove_dir_all(&control_dir);
    Ok(())
}

/// Cache-integrity coverage: a corrupted cache entry must be evicted and
/// recomputed byte-identical — never served.
pub fn run_corrupt_cache_check(scratch_dir: &std::path::Path) -> Result<(), String> {
    use apsp_core::JobRequest;

    let cfg = ChaosConfig {
        scratch_dir: scratch_dir.to_path_buf(),
        ..ChaosConfig::default()
    };
    let _ = std::fs::remove_dir_all(&cfg.scratch_dir);
    let g = trace::graph_pool(&cfg.trace)[0].clone();
    let mut svc = service_for(&cfg);

    let first = svc
        .submit(JobRequest::full(g.clone()))
        .map_err(|e| format!("first submit rejected: {e}"))?;
    svc.run_until_idle();
    let Some(JobState::Completed(done)) = svc.state(first) else {
        return Err("first run did not complete".into());
    };
    let clean_bits = done.rows.data.clone();

    if !svc.corrupt_cache_entry_for_test(&JobRequest::full(g.clone())) {
        return Err("no cache entry to corrupt".into());
    }
    let second = svc
        .submit(JobRequest::full(g.clone()))
        .map_err(|e| format!("resubmit after corruption rejected: {e}"))?;
    svc.run_until_idle();
    let Some(JobState::Completed(redone)) = svc.state(second) else {
        return Err("recompute after corruption did not complete".into());
    };
    if redone.from_cache {
        return Err("a corrupt cache entry was served".into());
    }
    if redone.rows.data != clean_bits {
        return Err("recompute after corruption is not byte-identical".into());
    }
    if svc.counters().cache_corrupt_evictions != 1 {
        return Err(format!(
            "expected exactly one corrupt eviction, counters: {:?}",
            svc.counters()
        ));
    }
    let _ = std::fs::remove_dir_all(&cfg.scratch_dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_holds() {
        let cfg = ChaosConfig {
            trace: TraceConfig {
                jobs: 10,
                ..TraceConfig::default()
            },
            queue_capacity: 4,
            scratch_dir: std::env::temp_dir().join("apsp-service-chaos-unit"),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).expect("chaos contract must hold");
        assert_eq!(report.verdicts.len(), 10);
        assert!(report
            .verdicts
            .iter()
            .any(|v| matches!(v.terminal, Terminal::Completed { .. })));
    }
}
