//! The differential oracle.
//!
//! For every corpus case the runner computes a CPU reference
//! (`bgl_plus_apsp`), the in-core GPU baseline, and all twelve
//! out-of-core variants — the cross product of the three algorithms,
//! `Memory`/`Disk` storage, and transfer overlap on/off — on a device
//! sized small enough that the out-of-core machinery genuinely engages.
//! Any cell-level disagreement becomes a [`Divergence`] naming the first
//! diverging cell, the tile containing it, and the Floyd-Warshall pivot
//! round at which the expected value was established — the coordinates a
//! human needs to replay the failing relaxation.

use crate::corpus::Case;
use apsp_core::api::RunDetails;
use apsp_core::in_core::in_core_fw;
use apsp_core::options::{Algorithm, ApspOptions, FwOptions};
use apsp_core::{apsp, ApspError, StorageBackend};
use apsp_cpu::{bgl_plus_apsp, DistMatrix};
use apsp_gpu_sim::{DeviceProfile, GpuDevice};
use apsp_graph::CsrGraph;
use std::path::PathBuf;

/// Tile side used for reporting when the producing algorithm has no
/// natural blocking (Johnson, boundary, in-core).
pub const REPORT_TILE: usize = 32;

/// How the differential runs are provisioned.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Device memory for the out-of-core variants. Small on purpose:
    /// every algorithm must tile/batch for the corpus sizes.
    pub device_bytes: u64,
    /// Directory for `Disk`-backed stores (spill files are removed when
    /// each store drops).
    pub scratch_dir: PathBuf,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            device_bytes: 256 << 10,
            scratch_dir: std::env::temp_dir().join("apsp-conformance"),
        }
    }
}

/// One out-of-core configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Which algorithm runs.
    pub algorithm: Algorithm,
    /// `Disk`-backed store instead of `Memory`.
    pub disk: bool,
    /// Transfer/compute overlap on.
    pub overlap: bool,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let alg = match self.algorithm {
            Algorithm::FloydWarshall => "fw",
            Algorithm::Johnson => "johnson",
            Algorithm::Boundary => "boundary",
        };
        write!(
            f,
            "{alg}/{}/{}",
            if self.disk { "disk" } else { "memory" },
            if self.overlap { "overlap" } else { "serial" }
        )
    }
}

/// The full 3 × 2 × 2 variant matrix.
pub fn all_variants() -> Vec<Variant> {
    let mut v = Vec::with_capacity(12);
    for algorithm in [
        Algorithm::FloydWarshall,
        Algorithm::Johnson,
        Algorithm::Boundary,
    ] {
        for disk in [false, true] {
            for overlap in [false, true] {
                v.push(Variant {
                    algorithm,
                    disk,
                    overlap,
                });
            }
        }
    }
    v
}

/// A cell where one implementation disagrees with the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The corpus case (`"<family>-<seed>"`).
    pub case_name: String,
    /// The per-case seed — regenerates the exact graph.
    pub case_seed: u64,
    /// Which run diverged (`"fw/disk/overlap"`, `"in-core"`, …).
    pub variant: String,
    /// First diverging cell, row-major order.
    pub row: usize,
    /// Column of the first diverging cell.
    pub col: usize,
    /// Reference value.
    pub expected: u32,
    /// The implementation's value.
    pub got: u32,
    /// Tile side the coordinates below are expressed in (the diverging
    /// run's block when it has one, [`REPORT_TILE`] otherwise).
    pub block: usize,
    /// `(row / block, col / block)` — which tile holds the cell.
    pub tile: (usize, usize),
    /// The Floyd-Warshall pivot round (0-based pivot index) at which the
    /// reference value of this cell was first established; `None` when
    /// the input adjacency already supplies it (no pivot needed).
    pub pivot_round: Option<usize>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence[{} vs reference] case {}: cell ({}, {}) = {}, expected {} \
             (tile ({}, {}) at block {}, expected value established {}); \
             reproduce with seed {:#x}",
            self.variant,
            self.case_name,
            self.row,
            self.col,
            self.got,
            self.expected,
            self.tile.0,
            self.tile.1,
            self.block,
            match self.pivot_round {
                Some(k) => format!("at pivot round {k}"),
                None => "by the input adjacency".into(),
            },
            self.case_seed,
        )
    }
}

/// Everything one case's differential sweep produced.
#[derive(Debug)]
pub struct CaseReport {
    /// First divergence of each disagreeing run (empty = full agreement).
    pub divergences: Vec<Divergence>,
    /// Runs compared against the reference (in-core baseline + variants).
    pub runs_compared: usize,
}

/// The pivot round (0-based pivot index) at which CPU Floyd-Warshall
/// first assigns `expected` to `(row, col)`; `None` if the adjacency
/// initialization already holds it.
pub fn pivot_round_of(g: &CsrGraph, row: usize, col: usize, expected: u32) -> Option<usize> {
    let mut d = DistMatrix::from_graph(g);
    if d.get(row, col) == expected {
        return None;
    }
    let n = g.num_vertices();
    for k in 0..n {
        for i in 0..n {
            let dik = d.get(i, k);
            if dik >= apsp_graph::INF {
                continue;
            }
            for j in 0..n {
                let cand = dik.saturating_add(d.get(k, j));
                if cand < d.get(i, j) {
                    d.set(i, j, cand);
                }
            }
        }
        if d.get(row, col) == expected {
            return Some(k);
        }
    }
    None
}

/// Diff `got` against `reference`, producing the first divergence in
/// row-major order (with tile and pivot-round coordinates) if any.
pub fn first_divergence(
    case: &Case,
    variant: &str,
    reference: &DistMatrix,
    got: &DistMatrix,
    block: usize,
) -> Option<Divergence> {
    let n = reference.n();
    debug_assert_eq!(got.n(), n);
    let (idx, (&e, &g)) = reference
        .as_slice()
        .iter()
        .zip(got.as_slice())
        .enumerate()
        .find(|(_, (e, g))| e != g)?;
    let (row, col) = (idx / n, idx % n);
    let block = block.max(1);
    Some(Divergence {
        case_name: case.name.clone(),
        case_seed: case.seed,
        variant: variant.to_string(),
        row,
        col,
        expected: e,
        got: g,
        block,
        tile: (row / block, col / block),
        pivot_round: pivot_round_of(&case.graph, row, col, e),
    })
}

/// Run one case through the in-core baseline and the full out-of-core
/// variant matrix, diffing everything against the CPU reference.
pub fn run_case(case: &Case, cfg: &RunnerConfig) -> Result<CaseReport, ApspError> {
    let reference = bgl_plus_apsp(&case.graph);
    let mut divergences = Vec::new();
    let mut runs_compared = 0;

    // In-core GPU baseline on a device big enough to hold the matrix.
    let mut big = GpuDevice::new(DeviceProfile::v100());
    let (incore, _) = in_core_fw(&mut big, &case.graph)?;
    runs_compared += 1;
    divergences.extend(first_divergence(
        case,
        "in-core",
        &reference,
        &incore,
        REPORT_TILE,
    ));

    for variant in all_variants() {
        let mut dev = GpuDevice::new(DeviceProfile::v100().with_memory_bytes(cfg.device_bytes));
        let mut opts = ApspOptions {
            algorithm: Some(variant.algorithm),
            storage: if variant.disk {
                StorageBackend::Disk(cfg.scratch_dir.clone())
            } else {
                StorageBackend::Memory
            },
            fw: FwOptions {
                overlap_transfers: variant.overlap,
                ..Default::default()
            },
            ..Default::default()
        };
        opts.johnson.overlap_transfers = variant.overlap;
        opts.boundary.overlap_transfers = variant.overlap;
        let result = apsp(&case.graph, &mut dev, &opts)?;
        let block = match &result.details {
            RunDetails::FloydWarshall(stats) => stats.block,
            _ => REPORT_TILE,
        };
        let got = result.store.to_dist_matrix()?;
        runs_compared += 1;
        divergences.extend(first_divergence(
            case,
            &variant.to_string(),
            &reference,
            &got,
            block,
        ));
    }
    Ok(CaseReport {
        divergences,
        runs_compared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Case, Family};

    #[test]
    fn variant_matrix_is_3x2x2() {
        let vs = all_variants();
        assert_eq!(vs.len(), 12);
        let labels: std::collections::BTreeSet<String> = vs.iter().map(|v| v.to_string()).collect();
        assert_eq!(labels.len(), 12, "labels must be distinct");
        assert!(labels.contains("fw/disk/overlap"));
        assert!(labels.contains("boundary/memory/serial"));
    }

    #[test]
    fn pivot_round_distinguishes_direct_edges_from_relayed_paths() {
        // 0 → 1 → 2 with a worse direct 0 → 2 edge: d(0,2) = 2 appears
        // only once pivot 1 runs; d(0,1) = 1 is adjacency-direct.
        let mut b = apsp_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 10);
        let g = b.build();
        assert_eq!(pivot_round_of(&g, 0, 1, 1), None);
        assert_eq!(pivot_round_of(&g, 0, 2, 2), Some(1));
        // A value Floyd-Warshall never produces has no round.
        assert_eq!(pivot_round_of(&g, 0, 2, 3), None);
    }

    #[test]
    fn first_divergence_reports_tile_coordinates() {
        let case = Case::generate(Family::ErdosRenyi, 77);
        let reference = bgl_plus_apsp(&case.graph);
        let mut corrupted = reference.clone();
        let (r, c) = (41, 67);
        corrupted.set(r, c, corrupted.get(r, c).wrapping_add(5));
        let d = first_divergence(&case, "fw/memory/serial", &reference, &corrupted, 32)
            .expect("corruption must be found");
        assert_eq!((d.row, d.col), (r, c));
        assert_eq!(d.tile, (r / 32, c / 32));
        assert_eq!(d.case_seed, 77);
        let msg = d.to_string();
        assert!(msg.contains("tile (1, 2)"), "{msg}");
        assert!(msg.contains("0x4d"), "{msg}");
        // Agreement produces no divergence.
        assert!(first_divergence(&case, "x", &reference, &reference, 32).is_none());
    }
}
